(* Algorithmic analytics over the flight recorder's event stream.

   Turns a smallworld.events.v1 stream (or an in-memory event list) into
   the quantities the paper reasons about: hop-count distribution vs
   log log n, per-hop objective-progress curves, gravity/pressure phase
   occupancy, dead-end and patch-entry rates.

   Interpretation notes, pinned here because tests rely on them:
   - A route is one route id; its hop count is the largest hop index
     seen (hop 0 is the source, so max index = steps taken).
   - A route with a dead_end event failed; every other route counts as
     completed.  For pure greedy (no step cutoff) this matches the
     protocol's delivered/dropped split exactly, so the completed-route
     hop mean equals Workload's mean_steps.
   - Phase occupancy only aggregates routes that emitted at least one
     phase_switch (gravity–pressure); hops before the first switch are
     in the implicit starting phase "gravity".
   - A route whose smallest hop index is positive lost its prefix to
     ring overwrite and is counted as truncated (still analyzed). *)

type route_stats = {
  mutable min_hop : int;
  mutable max_hop : int;
  mutable hop_events : int;
  mutable dead_end : bool;
  mutable patch_enters : int;
  mutable patch_exits : int;
  mutable switches : int;
  mutable phase : string;
  mutable hops_gravity : int;
  mutable hops_pressure : int;
}

type progress_point = { hop : int; routes : int; mean_objective : float }

type t = {
  events : int;
  msg_events : int;
  routes : int;
  truncated : int;
  completed : int;
  dead_ends : int;
  dead_end_rate : float;  (* nan when no routes *)
  hop_mean : float;  (* over completed routes; nan when none *)
  hop_p50 : float;
  hop_p90 : float;
  hop_max : int;
  hop_mean_all : float;
  log_log_n : float option;  (* ln ln n when [analyze ~n] was given *)
  progress : progress_point list;  (* by hop index, ascending *)
  switches : int;
  phased_routes : int;
  hops_gravity : int;  (* over phased routes only *)
  hops_pressure : int;
  patch_enters : int;
  patch_exits : int;
  routes_with_patch : int;
}

(* Nearest-rank percentile on a sorted array; 0 when empty. *)
let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else begin
    let rank = int_of_float (Float.ceil (p *. float_of_int n)) in
    float_of_int sorted.(max 0 (min (n - 1) (rank - 1)))
  end

let analyze ?n events =
  let routes : (int, route_stats) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  let stats route =
    match Hashtbl.find_opt routes route with
    | Some r -> r
    | None ->
        let r =
          {
            min_hop = max_int;
            max_hop = -1;
            hop_events = 0;
            dead_end = false;
            patch_enters = 0;
            patch_exits = 0;
            switches = 0;
            phase = "gravity";
            hops_gravity = 0;
            hops_pressure = 0;
          }
        in
        Hashtbl.add routes route r;
        order := route :: !order;
        r
  in
  (* hop index -> (routes reaching it, finite-objective count, sum).
     Objectives can be non-finite at the walk's end (phi diverges at the
     target, where the distance is 0), so the mean is taken over finite
     values only — one infinite arrival would otherwise poison the
     whole hop's mean. *)
  let progress : (int, int ref * int ref * float ref) Hashtbl.t = Hashtbl.create 64 in
  let msg_events = ref 0 and events_n = ref 0 in
  List.iter
    (fun (e : Events.event) ->
      incr events_n;
      match e.payload with
      | Events.Route_hop { route; hop; objective; _ } ->
          let r = stats route in
          r.min_hop <- min r.min_hop hop;
          r.max_hop <- max r.max_hop hop;
          r.hop_events <- r.hop_events + 1;
          (* Hop 0 is the source placement, not a step in a phase. *)
          if hop > 0 then
            if r.phase = "pressure" then r.hops_pressure <- r.hops_pressure + 1
            else r.hops_gravity <- r.hops_gravity + 1;
          let np, nfinite, sum =
            match Hashtbl.find_opt progress hop with
            | Some cell -> cell
            | None ->
                let cell = (ref 0, ref 0, ref 0.0) in
                Hashtbl.add progress hop cell;
                cell
          in
          incr np;
          if Float.is_finite objective then begin
            incr nfinite;
            sum := !sum +. objective
          end
      | Events.Dead_end { route; _ } -> (stats route).dead_end <- true
      | Events.Patch_enter { route; _ } ->
          let r = stats route in
          r.patch_enters <- r.patch_enters + 1
      | Events.Patch_exit { route; _ } ->
          let r = stats route in
          r.patch_exits <- r.patch_exits + 1
      | Events.Phase_switch { route; phase; _ } ->
          let r = stats route in
          r.switches <- r.switches + 1;
          r.phase <- phase
      | Events.Msg_send _ | Events.Msg_recv _ -> incr msg_events)
    events;
  let all = List.rev_map (fun id -> Hashtbl.find routes id) !order in
  let routes_n = List.length all in
  let completed = List.filter (fun r -> not r.dead_end) all in
  let hops_of r = max r.max_hop 0 in
  let completed_hops =
    Array.of_list (List.map hops_of (List.filter (fun r -> r.max_hop >= 0) completed))
  in
  Array.sort compare completed_hops;
  let mean a =
    let n = Array.length a in
    if n = 0 then Float.nan
    else float_of_int (Array.fold_left ( + ) 0 a) /. float_of_int n
  in
  let all_hops = Array.of_list (List.map hops_of all) in
  let sum_over f = List.fold_left (fun acc r -> acc + f r) 0 all in
  let phased = List.filter (fun (r : route_stats) -> r.switches > 0) all in
  let progress_points =
    Hashtbl.fold
      (fun hop (np, nfinite, sum) acc ->
        let mean_objective =
          if !nfinite = 0 then Float.nan else !sum /. float_of_int !nfinite
        in
        { hop; routes = !np; mean_objective } :: acc)
      progress []
    |> List.sort (fun a b -> compare a.hop b.hop)
  in
  {
    events = !events_n;
    msg_events = !msg_events;
    routes = routes_n;
    truncated = List.length (List.filter (fun r -> r.min_hop > 0 && r.max_hop >= 0) all);
    completed = List.length completed;
    dead_ends = routes_n - List.length completed;
    dead_end_rate =
      (if routes_n = 0 then Float.nan
       else float_of_int (routes_n - List.length completed) /. float_of_int routes_n);
    hop_mean = mean completed_hops;
    hop_p50 = percentile completed_hops 0.50;
    hop_p90 = percentile completed_hops 0.90;
    hop_max = Array.fold_left max 0 completed_hops;
    hop_mean_all = mean all_hops;
    log_log_n =
      Option.map (fun n -> Float.log (Float.log (float_of_int n))) n;
    progress = progress_points;
    switches = sum_over (fun r -> r.switches);
    phased_routes = List.length phased;
    hops_gravity = List.fold_left (fun acc (r : route_stats) -> acc + r.hops_gravity) 0 phased;
    hops_pressure = List.fold_left (fun acc (r : route_stats) -> acc + r.hops_pressure) 0 phased;
    patch_enters = sum_over (fun r -> r.patch_enters);
    patch_exits = sum_over (fun r -> r.patch_exits);
    routes_with_patch = List.length (List.filter (fun (r : route_stats) -> r.patch_enters > 0) all);
  }

let schema_version = "smallworld.analysis.v1"

let to_json t =
  (* Bind before [open Export]: Export has its own (manifest)
     [schema_version] that would shadow ours. *)
  let schema = schema_version in
  let open Export in
  let fopt f = if Float.is_finite f then Float f else Null in
  Obj
    [
      ("schema", Str schema);
      ("events", Int t.events);
      ("msg_events", Int t.msg_events);
      ("routes", Int t.routes);
      ("truncated_routes", Int t.truncated);
      ( "hops",
        Obj
          [
            ("completed_routes", Int t.completed);
            ("dead_end_routes", Int t.dead_ends);
            ("dead_end_rate", fopt t.dead_end_rate);
            ("mean", fopt t.hop_mean);
            ("p50", fopt t.hop_p50);
            ("p90", fopt t.hop_p90);
            ("max", Int t.hop_max);
            ("mean_all", fopt t.hop_mean_all);
            ("log_log_n", match t.log_log_n with Some x -> fopt x | None -> Null);
            ( "mean_over_log_log_n",
              match t.log_log_n with
              | Some ll when Float.is_finite t.hop_mean && ll > 0.0 ->
                  Float (t.hop_mean /. ll)
              | _ -> Null );
          ] );
      ( "progress",
        Arr
          (List.map
             (fun p ->
               Obj
                 [
                   ("hop", Int p.hop);
                   ("routes", Int p.routes);
                   ("mean_objective", fopt p.mean_objective);
                 ])
             t.progress) );
      ( "phases",
        Obj
          [
            ("switches", Int t.switches);
            ("phased_routes", Int t.phased_routes);
            ("hops_gravity", Int t.hops_gravity);
            ("hops_pressure", Int t.hops_pressure);
            ( "pressure_share",
              let total = t.hops_gravity + t.hops_pressure in
              if total = 0 then Null
              else Float (float_of_int t.hops_pressure /. float_of_int total) );
          ] );
      ( "patching",
        Obj
          [
            ("enters", Int t.patch_enters);
            ("exits", Int t.patch_exits);
            ("routes_with_patch", Int t.routes_with_patch);
            ( "entry_rate",
              if t.routes = 0 then Null
              else Float (float_of_int t.routes_with_patch /. float_of_int t.routes) );
          ] );
    ]

let render t =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let num f = if Float.is_finite f then Printf.sprintf "%.3f" f else "-" in
  line "events            %d (%d netsim msg events)" t.events t.msg_events;
  line "routes            %d (%d truncated by ring overwrite)" t.routes t.truncated;
  line "  completed       %d" t.completed;
  line "  dead ends       %d (rate %s)" t.dead_ends (num t.dead_end_rate);
  line "hops (completed)  mean %s  p50 %s  p90 %s  max %d" (num t.hop_mean)
    (num t.hop_p50) (num t.hop_p90) t.hop_max;
  (match t.log_log_n with
  | Some ll ->
      line "  log log n       %s  (mean/loglog %s)" (num ll)
        (num (t.hop_mean /. ll))
  | None -> ());
  if t.switches > 0 then begin
    line "phases            %d switches over %d routes" t.switches t.phased_routes;
    line "  occupancy       gravity %d hops, pressure %d hops" t.hops_gravity
      t.hops_pressure
  end;
  if t.patch_enters > 0 then
    line "patching          %d enters / %d exits, %d routes (entry rate %s)"
      t.patch_enters t.patch_exits t.routes_with_patch
      (num (float_of_int t.routes_with_patch /. float_of_int t.routes));
  if t.progress <> [] then begin
    line "per-hop objective progress:";
    line "  %4s  %7s  %14s" "hop" "routes" "mean objective";
    List.iter
      (fun p -> line "  %4d  %7d  %14.6g" p.hop p.routes p.mean_objective)
      t.progress
  end;
  Buffer.contents buf
