(** Named counters, gauges and log-linear-bucketed histograms
    (buckets from {!Hist}).

    Handles are bound to a {!registry} at registration time.  On a dead
    registry (explicit [create ~live:false], or the {!default} registry
    when the process runs with [SMALLWORLD_OBS=0]) every handle is a
    no-op stub: updates cost a single branch and snapshots come back
    zeroed, so instrumentation can stay in hot paths unconditionally.
    Names and kinds are recorded even when dead, keeping the metric
    schema enumerable in any mode.

    Metric names are stable, dot-namespaced identifiers ([girg.*],
    [route.*], [netsim.*], [exp.*]); see README.md "Observability". *)

type kind = Counter | Gauge | Histogram

val kind_to_string : kind -> string

type registry

val enabled : bool
(** False iff the environment carries [SMALLWORLD_OBS] set to [0],
    [false], [off] or [no].  Controls the default registry and spans. *)

val create : ?live:bool -> unit -> registry
(** An explicit registry, live unless [~live:false]. *)

val default : registry
(** The process-wide registry; live iff {!enabled}. *)

val is_live : registry -> bool

(** {1 Handles}

    Registering the same name twice returns the same underlying cell.
    @raise Invalid_argument when a name is re-registered with a
    different kind. *)

type counter
type gauge
type histogram

val counter : ?registry:registry -> string -> counter
val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val gauge : ?registry:registry -> string -> gauge
val set : gauge -> float -> unit

val set_max : gauge -> float -> unit
(** High-water mark: keeps the maximum of all values set so far. *)

val gauge_value : gauge -> float

val histogram : ?registry:registry -> string -> histogram

val observe : histogram -> float -> unit
(** O(log buckets): values land in the fixed log-linear buckets of
    {!Hist} (8 subbuckets per binade, plus a bucket for values
    [<= 0]), with exact count/sum/min/max kept alongside under the
    cell's mutex. *)

val hist_count : histogram -> int
val hist_sum : histogram -> float

(** {1 Snapshots} *)

type hist_snapshot = {
  count : int;
  sum : float;
  min : float;  (** [infinity] when empty *)
  max : float;  (** [neg_infinity] when empty *)
  buckets : (float * int) list;
      (** (inclusive upper bound, count) for each non-empty bucket,
          in increasing bound order *)
}

type value = Counter_v of int | Gauge_v of float | Histogram_v of hist_snapshot

val snapshot : registry -> (string * value) list
(** Every registered metric, sorted by name; zero values on a dead
    registry. *)

val list_metrics : registry -> (string * kind) list
(** Names and kinds, sorted by name — works in any mode. *)

val find_value : registry -> string -> value option

val reset : registry -> unit
(** Zero all cells (names stay registered). *)

val hist_quantile : hist_snapshot -> float -> float
(** Quantile estimate from a snapshot's buckets
    ({!Hist.quantile_of_buckets}): [0.] when empty, relative error
    bounded by the {!Hist} subbucket width (<= 12.5%). *)
