(** HDR-style log-linear histogram with fixed, process-global bucket
    boundaries.

    Every binade [(2^(e-1), 2^e]] for [e] in [[-30, 24]] (covering
    roughly half a nanosecond to 194 days when values are seconds) is
    split into 8 equal-width linear subbuckets; bucket 0 holds values
    [<= 0] (and NaN), bucket 1 holds positive underflow, and the last
    bucket holds overflow with an infinite upper bound.  Quantile
    estimates interpolate inside the bucket that holds the true
    quantile, so their relative error is bounded by the subbucket
    width: at most 1/8 = 12.5% of the value, usually much less.

    [record] is lock-free and allocation-free (a binary search over an
    immutable bound array plus one [Atomic.fetch_and_add]), safe to
    call from any domain.  Because the boundaries are fixed,
    {!merge_into} is a bucketwise add — associative and commutative —
    so per-domain histograms roll up exactly.

    {!Metrics} histograms are backed by this scheme; use this module
    directly when a raw, always-live histogram is needed outside the
    metric registry. *)

val bucket_count : int
(** Total number of buckets, including the [<= 0], underflow and
    overflow buckets. *)

val bound : int -> float
(** [bound i] is the inclusive upper edge of bucket [i]; [0.] for
    bucket 0, [infinity] for the last. *)

val index : float -> int
(** The bucket a value lands in: the smallest [i] with
    [v <= bound i] (bucket 0 for [v <= 0] and NaN). *)

type t

val create : unit -> t
val record : t -> float -> unit
val read : t -> int -> int
val count : t -> int
val is_empty : t -> bool
val reset : t -> unit

val merge_into : dst:t -> t -> unit
(** Bucketwise add of [src] counts into [dst] ([src] is unchanged). *)

val buckets : t -> (float * int) list
(** [(inclusive upper bound, count)] for each non-empty bucket, in
    increasing bound order — the same shape {!Metrics.hist_snapshot}
    carries. *)

val quantile : t -> float -> float
(** [quantile t p] for [p] in [[0, 1]] (clamped).  Linear interpolation
    inside the target bucket; the overflow bucket reports its lower
    edge.

    Empty histogram: the result is pinned to [0.] for every [p] — not
    [nan] — so latency dashboards and the server-stats snapshot render
    a quiet (or obs-off) process as zeros rather than poisoning
    downstream arithmetic.  A NaN [p] also yields [0.]. *)

val quantile_of_buckets : (float * int) list -> float -> float
(** {!quantile} over a {!buckets}-shaped snapshot list, for callers
    that hold a {!Metrics.hist_snapshot} rather than a live [t].  Same
    pinned empty behavior: all-zero (or empty) bucket lists yield [0.]
    for every [p]. *)
