(** Flight recorder: a bounded ring buffer of typed, timestamped events.

    Where {!Metrics} aggregates ("how much"), the recorder keeps the
    ordered tail of what actually happened — per-hop routing progress,
    patch entries/exits, phase switches, and message send/receive
    lineage from the network simulator — so a failed or truncated route
    can be replayed offline (see the [smallworld.events.v1] exporter in
    {!Export}).

    The buffer holds the most recent {!capacity} events; older ones are
    overwritten ({!dropped} counts the overwritten prefix).  Sequence
    numbers are monotone from the last {!clear}.

    Cost: with [SMALLWORLD_OBS=0] the recorder is permanently off and
    {!emit} is a single load-and-branch.  When observability is on,
    event capture alone can be disabled with [SMALLWORLD_OBS_EVENTS=0]
    or {!set_recording}; the initial buffer size can be overridden with
    [SMALLWORLD_OBS_EVENTS_CAP] (default 65536).  Instrumentation sites
    must guard payload construction behind {!recording}. *)

type payload =
  | Route_hop of { route : int; hop : int; vertex : int; objective : float }
      (** The message token arrived at [vertex] as hop [hop] (0 = the
          source) of route [route], with the given objective value. *)
  | Dead_end of { route : int; vertex : int }
      (** Pure greedy found no improving neighbour and dropped. *)
  | Patch_enter of { route : int; vertex : int; phi : float }
      (** Φ-DFS started a new inner DFS (SET_NEW_PHI) at [vertex]. *)
  | Patch_exit of { route : int; vertex : int; phi : float }
      (** The inner DFS failed; Φ restored to [phi] (RESET_TO_OLD_PHI). *)
  | Phase_switch of { route : int; vertex : int; phase : string }
      (** Gravity–pressure switched mode ([phase] is ["gravity"] or
          ["pressure"]). *)
  | Msg_send of {
      trace : int;  (** simulation instance *)
      msg : int;  (** unique message id within the trace *)
      parent : int;  (** the message being handled when this send
                         happened; [-1] for injected roots *)
      src : int;
      dst : int;
      kind : string;
      sim_time : float;
    }
  | Msg_recv of {
      trace : int;
      msg : int;
      parent : int;
      src : int;
      dst : int;
      kind : string;
      sim_time : float;
    }

type event = { seq : int; time : float; payload : payload }

val enabled : bool
(** Same kill switch as {!Metrics.enabled}. *)

val recording : unit -> bool
(** True iff events are currently being captured.  Guard event payload
    construction (and any computation feeding it) behind this. *)

val set_recording : bool -> unit
(** Arm or pause capture at runtime.  Ignored when {!enabled} is false. *)

val emit : payload -> unit
(** Append an event (stamping sequence number and wall time); no-op
    when not {!recording}. *)

val events : unit -> event list
(** The buffered events, oldest first.  At most {!capacity} entries. *)

val emitted : unit -> int
(** Events emitted since the last {!clear} (including overwritten ones). *)

val dropped : unit -> int
(** Events lost to ring overwrite since the last {!clear}. *)

val capacity : unit -> int

val set_capacity : int -> unit
(** Resize the ring (clears it).  @raise Invalid_argument if [n <= 0]. *)

val clear : unit -> unit
(** Drop all buffered events and restart sequence numbers at 0. *)

val next_route_id : unit -> int
(** Fresh route id for correlating the events of one routing call;
    callers gate this behind {!recording}. *)

val payload_kind : payload -> string
(** Stable snake_case tag, as used by the JSONL exporter. *)
