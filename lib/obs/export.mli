(** Exporters: Prometheus-style text dump and the JSONL run manifest. *)

(** Minimal JSON document, emitted compactly on a single line.
    Non-finite floats serialise as [null]. *)
type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

val json_to_string : json -> string

val json_of_string : string -> (json, string) result
(** Parse the JSON subset {!json_to_string} produces (no unicode beyond
    one-byte [\u] escapes).  Used to read [BENCH_*.json] files back. *)

val member : string -> json -> json option
(** Field lookup on an [Obj]; [None] on anything else. *)

val span_to_json : Span.t -> json
val value_to_json : Metrics.value -> json
val snapshot_to_json : (string * Metrics.value) list -> json

val git_rev : unit -> string
(** [SMALLWORLD_GIT_REV] if set, else a best-effort read of [.git/HEAD]
    relative to the working directory; ["unknown"] on failure. *)

val schema_version : string
(** Currently ["smallworld.obs.v1"]. *)

val manifest_line :
  ?extra:(string * json) list ->
  experiment:string ->
  seed:int ->
  scale:string ->
  registry:Metrics.registry ->
  span:Span.t option ->
  unit ->
  string
(** One JSONL record (no trailing newline): schema version, experiment
    id, seed, scale, git revision, wall time, full span tree and a
    metrics snapshot.  [extra] fields are appended verbatim. *)

val events_schema_version : string
(** Currently ["smallworld.events.v1"]. *)

val event_to_json : Events.event -> json
(** Flat, self-contained object: [schema], [seq], [t] (wall time),
    [type] (snake_case payload tag) and the payload's own fields. *)

val event_line : Events.event -> string

val write_events : out_channel -> Events.event list -> unit
(** One {!event_line} per event, newline-terminated (valid JSONL). *)

val prometheus : Metrics.registry -> string
(** Prometheus text exposition of a registry snapshot: names are
    prefixed [smallworld_] with separators mapped to underscores;
    histograms use cumulative [le] buckets. *)
