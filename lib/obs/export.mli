(** Exporters: Prometheus-style text dump and the JSONL run manifest. *)

(** Minimal JSON document, emitted compactly on a single line.
    Non-finite floats serialise as [null]. *)
type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

val json_to_string : json -> string

val json_of_string : string -> (json, string) result
(** Parse the JSON subset {!json_to_string} produces (no unicode beyond
    one-byte [\u] escapes).  Used to read [BENCH_*.json] files back. *)

val member : string -> json -> json option
(** Field lookup on an [Obj]; [None] on anything else. *)

val span_to_json : Span.t -> json
val value_to_json : Metrics.value -> json
val snapshot_to_json : (string * Metrics.value) list -> json

val git_rev : unit -> string
(** [SMALLWORLD_GIT_REV] if set, else a best-effort read of [.git/HEAD]
    relative to the working directory; ["unknown"] on failure. *)

val schema_version : string
(** Currently ["smallworld.obs.v1"]. *)

val manifest_line :
  ?extra:(string * json) list ->
  experiment:string ->
  seed:int ->
  scale:string ->
  registry:Metrics.registry ->
  span:Span.t option ->
  unit ->
  string
(** One JSONL record (no trailing newline): schema version, experiment
    id, seed, scale, git revision, wall time, full span tree and a
    metrics snapshot.  [extra] fields are appended verbatim. *)

val events_schema_version : string
(** Currently ["smallworld.events.v1"]. *)

val event_to_json : Events.event -> json
(** Flat, self-contained object: [schema], [seq], [t] (wall time),
    [type] (snake_case payload tag) and the payload's own fields. *)

val event_line : Events.event -> string

val write_events : out_channel -> Events.event list -> unit
(** One {!event_line} per event, newline-terminated (valid JSONL). *)

val event_of_json : json -> (Events.event, string) result
(** Decode one [smallworld.events.v1] object back into a typed event
    (exact inverse of {!event_to_json}).  Errors name the missing or
    mistyped field. *)

val span_of_json : json -> Span.t
(** Decode the span-tree object {!span_to_json} emits ([self_s] is
    derived and ignored on input).
    @raise Failure on a missing or mistyped field. *)

val trace_schema_version : string
(** Currently ["smallworld.trace.v1"]. *)

(** One request's span tree, addressable within a distributed trace:
    the record's [tr_root] hangs under span id [tr_parent] of whichever
    record of trace [tr_trace] declared [tr_span] equal to it (see
    {!Profile.merge}).  [tr_origin] labels the producing process
    (["cli"], ["server"], ...); [tr_t0] is the Unix time at root start,
    [0.] when unknown. *)
type trace_record = {
  tr_trace : string;
  tr_span : int;
  tr_parent : int option;
  tr_origin : string;
  tr_t0 : float;
  tr_root : Span.t;
}

val trace_to_json : trace_record -> json
val trace_line : trace_record -> string
(** One JSONL record (no trailing newline). *)

val trace_of_json : json -> (trace_record, string) result
(** Exact inverse of {!trace_to_json}. *)

val chrome_trace : ?t0:float -> Span.t -> string
(** Chrome trace-event JSON ([chrome://tracing] / Perfetto "JSON Array
    Format"): one complete ["X"] event per node, [pid]/[tid] fixed at 1,
    count/self time/allocation in [args].  Span trees are rolled-up
    profiles without per-invocation timestamps, so the timeline is
    synthetic: the root starts at [t0] (seconds, default 0) and children
    are packed sequentially inside their parent, clamped to never
    overrun it. *)

val folded_stacks : Span.t -> string
(** Folded-stack flamegraph text (flamegraph.pl / speedscope): one line
    per node, ["root;child;leaf N"] with [N] the node's self time in
    integer microseconds.  [';'] and [' '] in span names are sanitized;
    interior nodes whose self time rounds to 0 µs are omitted (leaves
    are always kept so every path appears). *)

val prometheus : Metrics.registry -> string
(** Prometheus text exposition of a registry snapshot: names are
    prefixed [smallworld_] with separators mapped to underscores;
    histograms use cumulative [le] buckets. *)
