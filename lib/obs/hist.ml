(* HDR-style log-linear histogram.

   The bucket boundaries are fixed, process-global constants: every
   binade (2^(e-1), 2^e] for e in [e_lo, e_hi] is split into [sub]
   equal-width linear subbuckets, giving a worst-case relative
   quantile error of 1/sub = 12.5% (the estimate always falls inside
   the bucket holding the true quantile, and a bucket spans at most
   1/sub of its own lower edge).  Three extra buckets catch the rest
   of the real line: index 0 holds v <= 0 (and NaN), index 1 holds
   positive underflow below 2^(e_lo-1), and the last bucket holds
   overflow above 2^e_hi with an infinite upper bound.

   Because the boundaries are shared by construction, merging is a
   bucketwise add — associative and commutative — which is what lets
   per-domain histograms roll up into one without rebinning.

   Counts are an [int Atomic.t] array: [record] is one binary search
   over an immutable float array plus one fetch-and-add — lock-free
   and allocation-free, safe from any domain. *)

let sub = 8
let e_lo = -30
let e_hi = 24
let bucket_count = 2 + ((e_hi - e_lo + 1) * sub) + 1

let bounds =
  let b = Array.make bucket_count infinity in
  b.(0) <- 0.0;
  b.(1) <- Float.ldexp 1.0 (e_lo - 1);
  let i = ref 2 in
  for e = e_lo to e_hi do
    for k = 1 to sub do
      b.(!i) <- Float.ldexp (1.0 +. (float_of_int k /. float_of_int sub)) (e - 1);
      incr i
    done
  done;
  b

let bound i = bounds.(i)

(* Smallest i with v <= bounds.(i); bounds are inclusive upper edges.
   The [not (v > 0.0)] spelling routes NaN to bucket 0 as well. *)
let index v =
  if not (v > 0.0) then 0
  else begin
    let lo = ref 1 and hi = ref (bucket_count - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if v <= bounds.(mid) then hi := mid else lo := mid + 1
    done;
    !lo
  end

type t = int Atomic.t array

let create () = Array.init bucket_count (fun _ -> Atomic.make 0)
let record t v = ignore (Atomic.fetch_and_add t.(index v) 1)
let read t i = Atomic.get t.(i)
let count t = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 t
let is_empty t = count t = 0
let reset t = Array.iter (fun c -> Atomic.set c 0) t

let merge_into ~dst src =
  Array.iteri
    (fun i c ->
      let n = Atomic.get c in
      if n > 0 then ignore (Atomic.fetch_and_add dst.(i) n))
    src

let buckets t =
  let acc = ref [] in
  for i = bucket_count - 1 downto 0 do
    let n = Atomic.get t.(i) in
    if n > 0 then acc := (bounds.(i), n) :: !acc
  done;
  !acc

(* Lower edge of the bucket whose inclusive upper bound is [ub]:
   boundaries are fixed, so it is simply the previous global bound. *)
let lower_of ub = if ub <= 0.0 then 0.0 else bounds.(index ub - 1)

let quantile_of_buckets bks p =
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 bks in
  if total = 0 then 0.0
  else begin
    let p = Float.max 0.0 (Float.min 1.0 p) in
    let target = p *. float_of_int total in
    let rec go cum = function
      | [] -> 0.0
      | (ub, c) :: rest ->
          let cum' = cum + c in
          if c > 0 && float_of_int cum' >= target then
            if ub <= 0.0 then 0.0
            else begin
              (* Interpolate linearly inside the bucket; the overflow
                 bucket has no finite upper edge, so report its lower
                 edge rather than inventing a value. *)
              let lo = lower_of ub in
              let hi = if ub = infinity then lo else ub in
              let frac = (target -. float_of_int cum) /. float_of_int c in
              let frac = Float.max 0.0 (Float.min 1.0 frac) in
              lo +. ((hi -. lo) *. frac)
            end
          else go cum' rest
    in
    go 0 bks
  end

let quantile t p = quantile_of_buckets (buckets t) p
