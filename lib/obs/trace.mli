(** Access to the completed span trees of the current process ("the
    trace") plus a human-readable renderer for them. *)

val roots : unit -> Span.t list
(** Completed top-level spans, oldest first. *)

val clear : unit -> unit
(** Drop all collected roots (e.g. between experiments). *)

val find : string -> Span.t option
(** Root span by exact name. *)

val render : ?max_depth:int -> Span.t -> string
(** ASCII table of one span tree: wall / self time, invocation count and
    allocated MB per node, indented by depth. *)

val render_all : ?max_depth:int -> unit -> string
