(* Flight recorder: a bounded ring buffer of typed, timestamped events.

   Metrics (metrics.ml) answer "how much happened"; this module answers
   "what happened, in what order".  Every event carries a monotone
   sequence number and a wall-clock timestamp; the buffer keeps the most
   recent [capacity ()] events and silently overwrites older ones, so a
   crashed or truncated route can always be replayed from its tail
   without unbounded memory.

   Cost model mirrors metrics.ml: with SMALLWORLD_OBS=0 the recorder is
   permanently dead ([recording ()] is false and [emit] returns
   immediately), so instrumented hot paths pay one load-and-branch.
   When observability is on, recording can additionally be switched off
   at runtime (SMALLWORLD_OBS_EVENTS=0 or [set_recording false]) while
   metrics stay live.  Instrumentation sites are expected to guard both
   the payload allocation and any extra computation behind
   [recording ()].

   Domain safety: sequence numbers are allocated with one atomic
   fetch-and-add, so every event gets a unique, gap-free [seq] even when
   routes emit from several domains, and [emitted]/[dropped] stay exact.
   Each slot write is a single pointer store (no tearing).  Two domains
   can race on the *same* slot only when their seqs differ by a multiple
   of the capacity — i.e. only once the ring has already wrapped and one
   of the two events was going to be dropped anyway; whichever store
   lands last wins the slot.  [events ()] therefore returns the recent
   tail exactly in the single-domain case and modulo that benign wrap
   race otherwise.  [set_capacity]/[clear] are not meant to run
   concurrently with emitters. *)

type payload =
  | Route_hop of { route : int; hop : int; vertex : int; objective : float }
  | Dead_end of { route : int; vertex : int }
  | Patch_enter of { route : int; vertex : int; phi : float }
  | Patch_exit of { route : int; vertex : int; phi : float }
  | Phase_switch of { route : int; vertex : int; phase : string }
  | Msg_send of {
      trace : int;
      msg : int;
      parent : int;
      src : int;
      dst : int;
      kind : string;
      sim_time : float;
    }
  | Msg_recv of {
      trace : int;
      msg : int;
      parent : int;
      src : int;
      dst : int;
      kind : string;
      sim_time : float;
    }

type event = { seq : int; time : float; payload : payload }

let enabled = Metrics.enabled

let initial_capacity =
  if not enabled then 0
  else
    match Option.bind (Sys.getenv_opt "SMALLWORLD_OBS_EVENTS_CAP") int_of_string_opt with
    | Some n when n > 0 -> n
    | Some _ | None -> 65_536

let armed =
  ref
    (enabled
    &&
    match Sys.getenv_opt "SMALLWORLD_OBS_EVENTS" with
    | Some ("0" | "false" | "off" | "no") -> false
    | Some _ | None -> true)

let dummy = { seq = -1; time = 0.0; payload = Dead_end { route = -1; vertex = -1 } }
let buf = ref (Array.make (max 1 initial_capacity) dummy)
let cap = ref (max 1 initial_capacity)

(* Events emitted since the last [clear]; the buffer holds the last
   [cap] of them and [seq] counts from 0 at the clear point. *)
let total = Atomic.make 0

let recording () = !armed
let set_recording b = if enabled then armed := b
let capacity () = !cap

let set_capacity n =
  if n <= 0 then invalid_arg "Obs.Events.set_capacity: capacity must be positive";
  buf := Array.make n dummy;
  cap := n;
  Atomic.set total 0

let clear () = Atomic.set total 0

let emit payload =
  if !armed then begin
    let seq = Atomic.fetch_and_add total 1 in
    !buf.(seq mod !cap) <- { seq; time = Unix.gettimeofday (); payload }
  end

let emitted () = Atomic.get total
let dropped () = max 0 (Atomic.get total - !cap)

let events () =
  let n = Atomic.get total and c = !cap in
  let kept = min n c in
  let first = n - kept in
  List.init kept (fun i -> !buf.((first + i) mod c))

(* Route ids must be unique across domains: routes fan out over a
   Parallel pool and each tags its hop/dead-end events with its id. *)
let route_ctr = Atomic.make 0

let next_route_id () = Atomic.fetch_and_add route_ctr 1 + 1

let payload_kind = function
  | Route_hop _ -> "route_hop"
  | Dead_end _ -> "dead_end"
  | Patch_enter _ -> "patch_enter"
  | Patch_exit _ -> "patch_exit"
  | Phase_switch _ -> "phase_switch"
  | Msg_send _ -> "msg_send"
  | Msg_recv _ -> "msg_recv"
