(** Offline assembly and analysis of [smallworld.trace.v1] records.

    A trace is a set of records — one span tree per process per request
    — linked by ids rather than clocks: a record whose [tr_parent]
    equals another record's [tr_span] (same [tr_trace]) hangs under
    that record's root.  {!merge} rebuilds the single end-to-end tree;
    {!critical_path} walks its heaviest chain. *)

type record = Export.trace_record = {
  tr_trace : string;
  tr_span : int;
  tr_parent : int option;
  tr_origin : string;
  tr_t0 : float;
  tr_root : Span.t;
}

val read_line : string -> (record, string) result
(** Parse one JSONL line. *)

val read_channel : in_channel -> record list * string list
(** All records in a JSONL stream (blank lines skipped), plus one
    ["line N: ..."] message per undecodable line. *)

val trace_ids : record list -> string list
(** Distinct trace ids, first-seen order. *)

val merge : ?trace_id:string -> record list -> (record, string) result
(** Link the records of one trace ([trace_id] defaults to the first
    record's) into a single tree: every record whose parent span is
    found gets its root grafted under that record's root span, and the
    one remaining root record — whose parent is [None] or dangling — is
    returned with the merged tree.  The inputs are deep-copied, not
    mutated.  Errors when the records form zero or several trees. *)

(** One link of a critical path: a span's wall time and the share of it
    not covered by the chain's next (heaviest) child. *)
type hop = { cp_name : string; cp_wall_s : float; cp_self_s : float }

val critical_path : Span.t -> hop list
(** Root-first chain following the heaviest child at every level.  The
    self contributions telescope: {!total} of the result equals the
    root's wall time exactly. *)

val total : hop list -> float
(** Sum of [cp_self_s] along a path. *)
