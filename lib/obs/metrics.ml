(* Named metric registry.

   Hot-path cost model: a metric handle is either a live cell or
   [*_noop]; the choice is made once, at registration time, from the
   registry's liveness.  With SMALLWORLD_OBS=0 every handle obtained
   from the default registry is a no-op stub, so instrumented code pays
   only an immediate branch on an immutable constructor — nothing is
   recorded and snapshots come back zeroed.  Names and kinds are
   registered even when dead, so tooling (e.g. `experiments_cli
   list-metrics`) can enumerate the schema in any mode.

   Domain safety: instrumented hot paths (objective evaluations, edge
   coins) run on multiple domains when a Parallel pool is active, so
   live counters are [Atomic.t int] (one fetch-and-add per increment)
   and gauges are [Atomic.t float] (plain store for [set], CAS loop for
   [set_max]).  Histogram buckets live in an {!Hist.t} (log-linear
   boundaries, atomic counts); the exact count/sum/min/max kept
   alongside are guarded by a per-cell mutex, so [observe] serialises
   on that mutex — histograms are observed from colder paths
   (per-message latencies, per-stage server timings).  Snapshots are
   not atomic across metrics — concurrent updates may land between
   reads — but every individual value read is consistent, and the
   usual quiesce-then-snapshot pattern (bench, manifests) is exact. *)

type kind = Counter | Gauge | Histogram

let kind_to_string = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"

type ccell = int Atomic.t
type gcell = float Atomic.t

type hcell = {
  h_lock : Mutex.t;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  h_hist : Hist.t;
}

type counter = Counter_noop | Counter_live of ccell
type gauge = Gauge_noop | Gauge_live of gcell
type histogram = Histogram_noop | Histogram_live of hcell

type cell = Cell_counter of ccell | Cell_gauge of gcell | Cell_hist of hcell

type registry = {
  live : bool;
  reg_lock : Mutex.t;
  tbl : (string, kind * cell option) Hashtbl.t;
}

let enabled =
  match Sys.getenv_opt "SMALLWORLD_OBS" with
  | Some ("0" | "false" | "off" | "no") -> false
  | Some _ | None -> true

let create ?(live = true) () = { live; reg_lock = Mutex.create (); tbl = Hashtbl.create 64 }
let default = create ~live:enabled ()
let is_live r = r.live

let register r name kind make_cell =
  Mutex.lock r.reg_lock;
  let cell =
    match Hashtbl.find_opt r.tbl name with
    | Some (k, cell) ->
        if k <> kind then begin
          Mutex.unlock r.reg_lock;
          invalid_arg
            (Printf.sprintf "Obs.Metrics: %S already registered as a %s" name (kind_to_string k))
        end;
        cell
    | None ->
        let cell = if r.live then Some (make_cell ()) else None in
        Hashtbl.add r.tbl name (kind, cell);
        cell
  in
  Mutex.unlock r.reg_lock;
  cell

let counter ?(registry = default) name =
  match register registry name Counter (fun () -> Cell_counter (Atomic.make 0)) with
  | Some (Cell_counter c) -> Counter_live c
  | Some _ -> assert false
  | None -> Counter_noop

let gauge ?(registry = default) name =
  match register registry name Gauge (fun () -> Cell_gauge (Atomic.make 0.0)) with
  | Some (Cell_gauge g) -> Gauge_live g
  | Some _ -> assert false
  | None -> Gauge_noop

let hist_cell () =
  { h_lock = Mutex.create (); h_count = 0; h_sum = 0.0; h_min = infinity;
    h_max = neg_infinity; h_hist = Hist.create () }

let histogram ?(registry = default) name =
  match register registry name Histogram (fun () -> Cell_hist (hist_cell ())) with
  | Some (Cell_hist h) -> Histogram_live h
  | Some _ -> assert false
  | None -> Histogram_noop

let incr = function Counter_noop -> () | Counter_live c -> ignore (Atomic.fetch_and_add c 1)
let add t n = match t with Counter_noop -> () | Counter_live c -> ignore (Atomic.fetch_and_add c n)
let counter_value = function Counter_noop -> 0 | Counter_live c -> Atomic.get c

let set t v = match t with Gauge_noop -> () | Gauge_live g -> Atomic.set g v

let set_max t v =
  match t with
  | Gauge_noop -> ()
  | Gauge_live g ->
      let rec update () =
        let cur = Atomic.get g in
        if v > cur && not (Atomic.compare_and_set g cur v) then update ()
      in
      update ()

let gauge_value = function Gauge_noop -> 0.0 | Gauge_live g -> Atomic.get g

let observe t v =
  match t with
  | Histogram_noop -> ()
  | Histogram_live h ->
      Mutex.lock h.h_lock;
      h.h_count <- h.h_count + 1;
      h.h_sum <- h.h_sum +. v;
      if v < h.h_min then h.h_min <- v;
      if v > h.h_max then h.h_max <- v;
      Hist.record h.h_hist v;
      Mutex.unlock h.h_lock

let hist_count = function Histogram_noop -> 0 | Histogram_live h -> h.h_count
let hist_sum = function Histogram_noop -> 0.0 | Histogram_live h -> h.h_sum

type hist_snapshot = {
  count : int;
  sum : float;
  min : float;  (** [infinity] when empty *)
  max : float;  (** [neg_infinity] when empty *)
  buckets : (float * int) list;  (** (inclusive upper bound, count), non-empty buckets only *)
}

type value = Counter_v of int | Gauge_v of float | Histogram_v of hist_snapshot

let zero_hist_snapshot =
  { count = 0; sum = 0.0; min = infinity; max = neg_infinity; buckets = [] }

let snapshot_cell = function
  | Some (Cell_counter c) -> Counter_v (Atomic.get c)
  | Some (Cell_gauge g) -> Gauge_v (Atomic.get g)
  | Some (Cell_hist h) ->
      Mutex.lock h.h_lock;
      let snap =
        { count = h.h_count; sum = h.h_sum; min = h.h_min; max = h.h_max;
          buckets = Hist.buckets h.h_hist }
      in
      Mutex.unlock h.h_lock;
      Histogram_v snap
  | None -> assert false

let zero_value = function
  | Counter -> Counter_v 0
  | Gauge -> Gauge_v 0.0
  | Histogram -> Histogram_v zero_hist_snapshot

let sorted_entries r =
  Mutex.lock r.reg_lock;
  let entries = Hashtbl.fold (fun name entry acc -> (name, entry) :: acc) r.tbl [] in
  Mutex.unlock r.reg_lock;
  List.sort (fun (a, _) (b, _) -> String.compare a b) entries

let snapshot r =
  List.map
    (fun (name, (kind, cell)) ->
      (name, if cell = None then zero_value kind else snapshot_cell cell))
    (sorted_entries r)

let list_metrics r = List.map (fun (name, (kind, _)) -> (name, kind)) (sorted_entries r)

let find_value r name =
  Mutex.lock r.reg_lock;
  let entry = Hashtbl.find_opt r.tbl name in
  Mutex.unlock r.reg_lock;
  match entry with
  | None -> None
  | Some (kind, cell) -> Some (if cell = None then zero_value kind else snapshot_cell cell)

let reset r =
  List.iter
    (fun (_, (_, cell)) ->
      match cell with
      | None -> ()
      | Some (Cell_counter c) -> Atomic.set c 0
      | Some (Cell_gauge g) -> Atomic.set g 0.0
      | Some (Cell_hist h) ->
          Mutex.lock h.h_lock;
          h.h_count <- 0;
          h.h_sum <- 0.0;
          h.h_min <- infinity;
          h.h_max <- neg_infinity;
          Hist.reset h.h_hist;
          Mutex.unlock h.h_lock)
    (sorted_entries r)

let hist_quantile (s : hist_snapshot) p = Hist.quantile_of_buckets s.buckets p
