(* Named metric registry.

   Hot-path cost model: a metric handle is either a live cell (one mutable
   record field update per increment) or [*_noop]; the choice is made once,
   at registration time, from the registry's liveness.  With
   SMALLWORLD_OBS=0 every handle obtained from the default registry is a
   no-op stub, so instrumented code pays only an immediate branch on an
   immutable constructor — nothing is recorded and snapshots come back
   zeroed.  Names and kinds are registered even when dead, so tooling
   (e.g. `experiments_cli list-metrics`) can enumerate the schema in any
   mode. *)

type kind = Counter | Gauge | Histogram

let kind_to_string = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"

(* Log2 buckets: index 0 holds v <= 0, index i (1..num_buckets-1) holds
   v in (2^(e-1), 2^e] with e = i - 1 + min_exp. *)
let min_exp = -64
let max_exp = 63
let num_buckets = max_exp - min_exp + 2

type ccell = { mutable c_value : int }
type gcell = { mutable g_value : float }

type hcell = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  h_buckets : int array;
}

type counter = Counter_noop | Counter_live of ccell
type gauge = Gauge_noop | Gauge_live of gcell
type histogram = Histogram_noop | Histogram_live of hcell

type cell = Cell_counter of ccell | Cell_gauge of gcell | Cell_hist of hcell

type registry = {
  live : bool;
  tbl : (string, kind * cell option) Hashtbl.t;
}

let enabled =
  match Sys.getenv_opt "SMALLWORLD_OBS" with
  | Some ("0" | "false" | "off" | "no") -> false
  | Some _ | None -> true

let create ?(live = true) () = { live; tbl = Hashtbl.create 64 }
let default = create ~live:enabled ()
let is_live r = r.live

let register r name kind make_cell =
  match Hashtbl.find_opt r.tbl name with
  | Some (k, cell) ->
      if k <> kind then
        invalid_arg
          (Printf.sprintf "Obs.Metrics: %S already registered as a %s" name (kind_to_string k));
      cell
  | None ->
      let cell = if r.live then Some (make_cell ()) else None in
      Hashtbl.add r.tbl name (kind, cell);
      cell

let counter ?(registry = default) name =
  match register registry name Counter (fun () -> Cell_counter { c_value = 0 }) with
  | Some (Cell_counter c) -> Counter_live c
  | Some _ -> assert false
  | None -> Counter_noop

let gauge ?(registry = default) name =
  match register registry name Gauge (fun () -> Cell_gauge { g_value = 0.0 }) with
  | Some (Cell_gauge g) -> Gauge_live g
  | Some _ -> assert false
  | None -> Gauge_noop

let hist_cell () =
  { h_count = 0; h_sum = 0.0; h_min = infinity; h_max = neg_infinity;
    h_buckets = Array.make num_buckets 0 }

let histogram ?(registry = default) name =
  match register registry name Histogram (fun () -> Cell_hist (hist_cell ())) with
  | Some (Cell_hist h) -> Histogram_live h
  | Some _ -> assert false
  | None -> Histogram_noop

let incr = function Counter_noop -> () | Counter_live c -> c.c_value <- c.c_value + 1
let add t n = match t with Counter_noop -> () | Counter_live c -> c.c_value <- c.c_value + n
let counter_value = function Counter_noop -> 0 | Counter_live c -> c.c_value

let set t v = match t with Gauge_noop -> () | Gauge_live g -> g.g_value <- v

let set_max t v =
  match t with Gauge_noop -> () | Gauge_live g -> if v > g.g_value then g.g_value <- v

let gauge_value = function Gauge_noop -> 0.0 | Gauge_live g -> g.g_value

(* Smallest e with v <= 2^e, exact via frexp (v = m * 2^e', m in [0.5, 1)). *)
let bucket_index v =
  if v <= 0.0 then 0
  else begin
    let m, e = Float.frexp v in
    let e = if m = 0.5 then e - 1 else e in
    if e < min_exp then 1 else if e > max_exp then num_buckets - 1 else e - min_exp + 1
  end

let bucket_upper_bound i = if i = 0 then 0.0 else Float.ldexp 1.0 (i - 1 + min_exp)

let observe t v =
  match t with
  | Histogram_noop -> ()
  | Histogram_live h ->
      h.h_count <- h.h_count + 1;
      h.h_sum <- h.h_sum +. v;
      if v < h.h_min then h.h_min <- v;
      if v > h.h_max then h.h_max <- v;
      let i = bucket_index v in
      h.h_buckets.(i) <- h.h_buckets.(i) + 1

let hist_count = function Histogram_noop -> 0 | Histogram_live h -> h.h_count
let hist_sum = function Histogram_noop -> 0.0 | Histogram_live h -> h.h_sum

type hist_snapshot = {
  count : int;
  sum : float;
  min : float;  (** [infinity] when empty *)
  max : float;  (** [neg_infinity] when empty *)
  buckets : (float * int) list;  (** (inclusive upper bound, count), non-empty buckets only *)
}

type value = Counter_v of int | Gauge_v of float | Histogram_v of hist_snapshot

let zero_hist_snapshot =
  { count = 0; sum = 0.0; min = infinity; max = neg_infinity; buckets = [] }

let snapshot_cell = function
  | Some (Cell_counter c) -> Counter_v c.c_value
  | Some (Cell_gauge g) -> Gauge_v g.g_value
  | Some (Cell_hist h) ->
      let buckets = ref [] in
      for i = num_buckets - 1 downto 0 do
        if h.h_buckets.(i) > 0 then
          buckets := (bucket_upper_bound i, h.h_buckets.(i)) :: !buckets
      done;
      Histogram_v
        { count = h.h_count; sum = h.h_sum; min = h.h_min; max = h.h_max; buckets = !buckets }
  | None -> assert false

let zero_value = function
  | Counter -> Counter_v 0
  | Gauge -> Gauge_v 0.0
  | Histogram -> Histogram_v zero_hist_snapshot

let sorted_entries r =
  Hashtbl.fold (fun name entry acc -> (name, entry) :: acc) r.tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot r =
  List.map
    (fun (name, (kind, cell)) ->
      (name, if cell = None then zero_value kind else snapshot_cell cell))
    (sorted_entries r)

let list_metrics r = List.map (fun (name, (kind, _)) -> (name, kind)) (sorted_entries r)

let find_value r name =
  match Hashtbl.find_opt r.tbl name with
  | None -> None
  | Some (kind, cell) -> Some (if cell = None then zero_value kind else snapshot_cell cell)

let reset r =
  Hashtbl.iter
    (fun _ (_, cell) ->
      match cell with
      | None -> ()
      | Some (Cell_counter c) -> c.c_value <- 0
      | Some (Cell_gauge g) -> g.g_value <- 0.0
      | Some (Cell_hist h) ->
          h.h_count <- 0;
          h.h_sum <- 0.0;
          h.h_min <- infinity;
          h.h_max <- neg_infinity;
          Array.fill h.h_buckets 0 num_buckets 0)
    r.tbl
