type params = { n : int; alpha_h : float; radius_c : float; temperature : float }

let make ?(alpha_h = 0.75) ?(radius_c = 0.0) ?(temperature = 0.0) ~n () =
  if n < 1 then invalid_arg "Hrg.make: n must be >= 1";
  if not (alpha_h > 0.5 && alpha_h < 1.0) then
    invalid_arg "Hrg.make: alpha_h must lie in (1/2, 1) for beta in (2, 3)";
  if not (temperature >= 0.0 && temperature < 1.0) then
    invalid_arg "Hrg.make: temperature must lie in [0, 1)";
  { n; alpha_h; radius_c; temperature }

let disk_radius p = (2.0 *. log (float_of_int p.n)) +. p.radius_c

type polar = { r : float; angle : float }

let acosh x = log (x +. sqrt ((x -. 1.0) *. (x +. 1.0)))

let sample_polar ~rng p =
  let big_r = disk_radius p in
  let angle = Prng.Rng.float rng (2.0 *. Float.pi) in
  (* Inverse-CDF of the radial density: F(r) = (cosh(a r) - 1)/(cosh(a R) - 1). *)
  let u = Prng.Rng.unit_float_pos rng in
  let r = acosh (1.0 +. (u *. (cosh (p.alpha_h *. big_r) -. 1.0))) /. p.alpha_h in
  { r; angle }

let sample_points ~rng p ~count = Array.init count (fun _ -> sample_polar ~rng p)

let distance a b =
  let dangle =
    let d = abs_float (a.angle -. b.angle) in
    if d > Float.pi then (2.0 *. Float.pi) -. d else d
  in
  let ch = cosh (a.r -. b.r) +. ((1.0 -. cos dangle) *. sinh a.r *. sinh b.r) in
  acosh (Float.max 1.0 ch)

let edge_prob p d_h =
  let big_r = disk_radius p in
  if p.temperature = 0.0 then if d_h <= big_r then 1.0 else 0.0
  else begin
    let x = (d_h -. big_r) /. (2.0 *. p.temperature) in
    (* Guard against overflow of [exp]. *)
    if x > 700.0 then 0.0 else 1.0 /. (1.0 +. exp x)
  end

let beta p = (2.0 *. p.alpha_h) +. 1.0

let girg_weight p ~r = float_of_int p.n *. exp (-.r /. 2.0)

let girg_position (pt : polar) = [| pt.angle /. (2.0 *. Float.pi) |]

let polar_of_girg p ~weight ~position =
  { r = 2.0 *. log (float_of_int p.n /. weight); angle = position.(0) *. 2.0 *. Float.pi }

(* Envelope derivation (valid for radii >= 1, i.e. weights <= n e^{-1/2}):
   with [Q = w_u w_v / (n * dist)],
     e^{d_H - R} >= e^{-C} / Q^2,
   because [cosh d_H >= (1 - cos(2 pi dist)) sinh r_u sinh r_v >= dist^2
   e^{r_u + r_v}]  (using 1 - cos t >= 2 t^2 / pi^2 on [0, pi] and
   sinh r >= 0.432 e^r for r >= 1, whose product of constants exceeds 1).
   Hence  p <= e^{-(d_H - R)/(2T)} <= e^{C/(2T)} Q^{1/T}  for T > 0,
   and in the threshold case an edge requires Q >= e^{-C/2}. *)
let kernel p =
  let nf = float_of_int p.n in
  let prob ~wu ~wv ~dist =
    let a = { r = 2.0 *. log (nf /. wu); angle = 0.0 } in
    let b = { r = 2.0 *. log (nf /. wv); angle = 2.0 *. Float.pi *. dist } in
    edge_prob p (distance a b)
  in
  let upper ~wu_ub ~wv_ub ~min_dist =
    if min_dist <= 0.0 then 1.0
    else begin
      let q = wu_ub *. wv_ub /. (nf *. min_dist) in
      if p.temperature = 0.0 then
        if q >= exp (-.p.radius_c /. 2.0) then 1.0 else 0.0
      else begin
        let bound = exp (p.radius_c /. (2.0 *. p.temperature)) *. (q ** (1.0 /. p.temperature)) in
        Float.min 1.0 bound
      end
    end
  in
  let saturation_volume ~wu_ub ~wv_ub =
    wu_ub *. wv_ub *. Float.max 1.0 (exp (p.radius_c /. 2.0)) /. nf
  in
  {
    Girg.Kernel.name =
      Printf.sprintf "hrg(n=%d, alpha_h=%g, C=%g, T=%g)" p.n p.alpha_h p.radius_c
        p.temperature;
    dim = 1;
    norm = Geometry.Torus.Linf;
    prob;
    prob_packed = None;
    upper;
    saturation_volume;
    weight_cap = nf *. exp (-0.5);
  }

type t = {
  params : params;
  coords : polar array;
  packed_coords : float array;
  weights : float array;
  positions : Geometry.Torus.point array;
  graph : Sparse_graph.Graph.t;
}

let pack_coords coords =
  let n = Array.length coords in
  let packed = Array.make (max 1 (2 * n)) 0.0 in
  for v = 0 to n - 1 do
    packed.(2 * v) <- coords.(v).r;
    packed.((2 * v) + 1) <- coords.(v).angle
  done;
  packed

type sampler = Auto | Use_naive | Use_cell

let generate ?(sampler = Auto) ~rng p =
  let rng_points = Prng.Rng.split rng in
  let rng_edges = Prng.Rng.split rng in
  let coords = sample_points ~rng:rng_points p ~count:p.n in
  let weights = Array.map (fun pt -> girg_weight p ~r:pt.r) coords in
  let positions = Array.map girg_position coords in
  let use_cell =
    match sampler with Use_cell -> true | Use_naive -> false | Auto -> p.n > 600
  in
  let buf =
    if use_cell then
      fst
        (Girg.Cell.sample_edges_buf_stats ~rng:rng_edges ~kernel:(kernel p) ~weights
           ~positions ())
    else begin
      (* Native reference: all pairs with the hyperbolic distance directly. *)
      let buf = Girg.Edge_buf.create () in
      for u = 0 to p.n - 1 do
        for v = u + 1 to p.n - 1 do
          let pr = edge_prob p (distance coords.(u) coords.(v)) in
          if pr > 0.0 && (pr >= 1.0 || Prng.Rng.unit_float rng_edges < pr) then
            Girg.Edge_buf.push buf u v
        done
      done;
      buf
    end
  in
  let graph =
    Sparse_graph.Graph.of_flat_halves ~n:p.n ~len:(Girg.Edge_buf.flat_len buf)
      (Girg.Edge_buf.flat buf)
  in
  { params = p; coords; packed_coords = pack_coords coords; weights; positions; graph }
