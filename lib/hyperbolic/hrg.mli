(** Hyperbolic random graphs (Krioukov et al. 2010), Definition 11.1 of the
    paper, together with the exact mapping onto one-dimensional GIRGs from
    Section 11.

    The model places [n] vertices on a hyperbolic disk of radius
    [R = 2 ln n + radius_c]: angles uniform, radii with density
    [alpha_h sinh(alpha_h r) / (cosh(alpha_h R) - 1)].  Vertices connect with
    probability [1 / (1 + e^{(d_H - R)/(2 T)})]; in the limit [T -> 0] the
    threshold rule [d_H <= R] applies.

    The GIRG embedding is [w_v = n e^{-r_v/2}], [x_v = angle_v / 2pi], with
    power-law exponent [beta = 2 alpha_h + 1], decay [alpha = 1/T], and
    [w_min = e^{-radius_c / 2}].  Under this mapping geometric routing
    (minimising hyperbolic distance to the target) becomes greedy routing for
    the objective [phi_H] of Section 11 — implemented in the routing library. *)

type params = {
  n : int;  (** number of vertices *)
  alpha_h : float;  (** radial dispersion; power law [beta = 2 alpha_h + 1] *)
  radius_c : float;  (** the constant [C] in [R = 2 ln n + C] *)
  temperature : float;  (** [T >= 0]; [0] is the threshold model *)
}

val make : ?alpha_h:float -> ?radius_c:float -> ?temperature:float -> n:int -> unit -> params
(** Defaults: [alpha_h = 0.75] (beta = 2.5), [radius_c = 0], [temperature = 0].
    @raise Invalid_argument unless [n >= 1], [alpha_h] in (1/2, 1), [T] in
    [0, 1). *)

val disk_radius : params -> float
(** [R = 2 ln n + radius_c]. *)

type polar = { r : float; angle : float }
(** A point of the hyperbolic disk in native coordinates, [angle] in
    [[0, 2 pi)]. *)

val sample_polar : rng:Prng.Rng.t -> params -> polar
val sample_points : rng:Prng.Rng.t -> params -> count:int -> polar array

val distance : polar -> polar -> float
(** Hyperbolic distance via the stable identity
    [cosh d = cosh (r_x - r_y) + (1 - cos dangle) sinh r_x sinh r_y]. *)

val edge_prob : params -> float -> float
(** [edge_prob p d_h]: connection probability at hyperbolic distance [d_h]. *)

val beta : params -> float
(** Power-law exponent of the equivalent GIRG: [2 alpha_h + 1]. *)

val girg_weight : params -> r:float -> float
(** [n e^{-r/2}]. *)

val girg_position : polar -> Geometry.Torus.point
(** [[| angle / 2 pi |]]. *)

val polar_of_girg : params -> weight:float -> position:Geometry.Torus.point -> polar
(** Inverse mapping (radius [2 ln (n/w)]). *)

val kernel : params -> Girg.Kernel.t
(** The HRG edge kernel expressed in GIRG coordinates, with a rejection
    envelope valid for all radii [>= 1]; vertices closer to the disk centre
    carry weights above the kernel's [weight_cap] and are handled
    exhaustively by the cell sampler. *)

type t = {
  params : params;
  coords : polar array;
  packed_coords : float array;
      (** Same points as [coords], interleaved [[r0; angle0; r1; angle1; ...]]
          — the flat layout the routing hot paths read. *)
  weights : float array;  (** GIRG-equivalent weights *)
  positions : Geometry.Torus.point array;  (** GIRG-equivalent positions *)
  graph : Sparse_graph.Graph.t;
}

val pack_coords : polar array -> float array
(** Interleave a polar array into the [packed_coords] layout. *)

type sampler = Auto | Use_naive | Use_cell

val generate : ?sampler:sampler -> rng:Prng.Rng.t -> params -> t
(** Sample a complete instance.  [Use_naive] tests all pairs with the native
    hyperbolic distance; [Use_cell] routes generation through the GIRG cell
    sampler with {!kernel} — the two produce identically distributed
    graphs. *)
