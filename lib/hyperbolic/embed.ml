type t = { params : Hrg.params; coords : Hrg.polar array }

(* Numerically safe log of the temperature-T connection probability. *)
let log_p ~big_r ~t d =
  let x = (d -. big_r) /. (2.0 *. t) in
  if x > 0.0 then -.x -. log1p (exp (-.x)) else -.log1p (exp x)

let two_pi = 2.0 *. Float.pi

(* Angular layout skeleton: a BFS spanning forest (components in decreasing
   size, roots of maximum degree) laid out by recursive sector splitting —
   every vertex sits at the centre of an angular sector sized proportionally
   to its subtree.  Tree edges are angularly local by construction, and in
   hyperbolic graphs BFS trees follow the geometry closely, so this is a
   strong initial guess for the true angles. *)
let sector_layout ~graph =
  let n = Sparse_graph.Graph.n graph in
  let comps = Sparse_graph.Components.compute graph in
  let parent = Array.make n (-1) in
  let children = Array.make n [] in
  let roots = ref [] in
  let order = Array.make n 0 in
  let filled = ref 0 in
  let visited = Array.make n false in
  (* Components sorted by decreasing size, each rooted at its max-degree
     vertex. *)
  let comp_ids = List.init (Sparse_graph.Components.count comps) Fun.id in
  let comp_ids =
    List.sort
      (fun a b -> compare (Sparse_graph.Components.size comps b) (Sparse_graph.Components.size comps a))
      comp_ids
  in
  List.iter
    (fun cid ->
      let members = Sparse_graph.Components.members comps cid in
      let root = ref members.(0) in
      Array.iter
        (fun v -> if Sparse_graph.Graph.degree graph v > Sparse_graph.Graph.degree graph !root then root := v)
        members;
      roots := (!root, Array.length members) :: !roots;
      let queue = Queue.create () in
      visited.(!root) <- true;
      Queue.add !root queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        order.(!filled) <- u;
        incr filled;
        Sparse_graph.Graph.iter_neighbors graph u (fun w ->
            if not visited.(w) then begin
              visited.(w) <- true;
              parent.(w) <- u;
              children.(u) <- w :: children.(u);
              Queue.add w queue
            end)
      done)
    comp_ids;
  let roots = List.rev !roots in
  (* Subtree sizes: accumulate in reverse BFS order. *)
  let subtree = Array.make n 1 in
  for k = n - 1 downto 0 do
    let v = order.(k) in
    if parent.(v) >= 0 then subtree.(parent.(v)) <- subtree.(parent.(v)) + subtree.(v)
  done;
  (* Sector assignment, iterative DFS. *)
  let angles = Array.make n 0.0 in
  let assign root lo hi =
    let stack = Stack.create () in
    Stack.push (root, lo, hi) stack;
    while not (Stack.is_empty stack) do
      let v, lo, hi = Stack.pop stack in
      angles.(v) <- Float.rem ((lo +. hi) /. 2.0) two_pi;
      let total = float_of_int (subtree.(v) - 1) in
      if total > 0.0 then begin
        let cursor = ref lo in
        List.iter
          (fun c ->
            let span = (hi -. lo) *. float_of_int subtree.(c) /. total in
            Stack.push (c, !cursor, !cursor +. span) stack;
            cursor := !cursor +. span)
          children.(v)
      end
    done
  in
  let total_size = float_of_int n in
  let cursor = ref 0.0 in
  List.iter
    (fun (root, size) ->
      let span = two_pi *. float_of_int size /. total_size in
      assign root !cursor (!cursor +. span);
      cursor := !cursor +. span)
    roots;
  angles

let infer ~rng ~graph ?(fit_temperature = 0.5) ?(candidates = 32)
    ?(refinement_sweeps = 0) () =
  let n = Sparse_graph.Graph.n graph in
  if n = 0 then invalid_arg "Embed.infer: empty graph";
  let nf = float_of_int n in
  (* Degrees stand in for weights: degrees concentrate around Theta(w), and
     Theorem 3.5 tolerates the constant-factor error.  The floor keeps
     isolated vertices at the rim rather than at infinite radius. *)
  let w_floor = 0.5 in
  let weight v = Float.max w_floor (float_of_int (Sparse_graph.Graph.degree graph v)) in
  let radius v = 2.0 *. log (nf /. Float.min (nf /. 1.001) (weight v)) in
  let radius_c = -2.0 *. log w_floor in
  let params = Hrg.make ~alpha_h:0.75 ~radius_c ~temperature:0.0 ~n () in
  let big_r = Hrg.disk_radius params in
  let radii = Array.init n radius in
  let angles = sector_layout ~graph in
  (* Precomputed hyperbolic terms: cosh d(u,v) = ch_u ch_v - sh_u sh_v cos da. *)
  let ch = Array.map cosh radii and sh = Array.map sinh radii in
  let dist u_ch u_sh u_angle v =
    let x = (u_ch *. ch.(v)) -. (u_sh *. sh.(v) *. cos (u_angle -. angles.(v))) in
    let x = Float.max 1.0 x in
    log (x +. sqrt ((x -. 1.0) *. (x +. 1.0)))
  in
  (* Windowed likelihood refinement: each sweep lets a vertex move within a
     shrinking window around its current angle, towards the angle that best
     explains its edges.  The window is what prevents the attraction-only
     objective from collapsing the circle. *)
  let sweep_order = Array.init n Fun.id in
  let window = ref (Float.pi /. 2.0) in
  for _ = 1 to refinement_sweeps do
    Prng.Dist.shuffle_in_place rng sweep_order;
    Array.iter
      (fun v ->
        if Sparse_graph.Graph.degree graph v > 0 then begin
          let v_ch = ch.(v) and v_sh = sh.(v) in
          let score theta =
            Sparse_graph.Graph.fold_neighbors graph v ~init:0.0 ~f:(fun acc u ->
                acc +. log_p ~big_r ~t:fit_temperature (dist v_ch v_sh theta u))
          in
          let best = ref angles.(v) and best_score = ref (score angles.(v)) in
          for k = 0 to candidates - 1 do
            let frac = (2.0 *. float_of_int k /. float_of_int (candidates - 1)) -. 1.0 in
            let theta = angles.(v) +. (frac *. !window) in
            let s = score theta in
            if s > !best_score then begin
              best_score := s;
              best := theta
            end
          done;
          angles.(v) <- Float.rem (!best +. two_pi) two_pi
        end)
      sweep_order;
    window := !window /. 2.0
  done;
  let coords = Array.init n (fun v -> { Hrg.r = radii.(v); angle = angles.(v) }) in
  { params; coords }

let to_hrg t ~graph =
  let weights = Array.map (fun c -> Hrg.girg_weight t.params ~r:c.Hrg.r) t.coords in
  let positions = Array.map Hrg.girg_position t.coords in
  {
    Hrg.params = t.params;
    coords = t.coords;
    packed_coords = Hrg.pack_coords t.coords;
    weights;
    positions;
    graph;
  }
