type t = {
  dim : int;
  max_level : int;
  codes : int array; (* deepest-level Morton code, ascending *)
  order : int array; (* order.(k) = vertex id at sorted position k *)
}

let build ~dim ~max_level ~points ~ids =
  if max_level > Morton.max_level ~dim then
    invalid_arg "Grid.build: max_level too deep for dimension";
  let n = Array.length ids in
  let keyed =
    Array.map (fun id -> (Morton.code_of_point ~dim ~level:max_level points.(id), id)) ids
  in
  Array.sort (fun (a, _) (b, _) -> compare a b) keyed;
  ignore n;
  {
    dim;
    max_level;
    codes = Array.map fst keyed;
    order = Array.map snd keyed;
  }

let dim t = t.dim
let max_level t = t.max_level
let size t = Array.length t.order

(* First sorted position whose code is >= [key].  The annotations matter:
   without them the [<] below infers polymorphic and every probe of the
   binary search pays a [compare_val] C call — measurably the hottest
   instruction in the whole sampler. *)
let lower_bound (codes : int array) (key : int) =
  let lo = ref 0 and hi = ref (Array.length codes) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if codes.(mid) < key then lo := mid + 1 else hi := mid
  done;
  !lo

let check_level t level =
  if level < 0 || level > t.max_level then invalid_arg "Grid.cell_range: bad level"

(* [iter_cell]/[count_cell] run once per enumerated cell pair — hundreds
   of thousands of times per sampling pass — so they inline the two
   binary searches rather than going through [cell_range], whose result
   tuple would be allocated just to be torn apart. *)

let cell_range t ~level ~code =
  check_level t level;
  let shift = t.dim * (t.max_level - level) in
  let lo_key = code lsl shift in
  let hi_key = (code + 1) lsl shift in
  (lower_bound t.codes lo_key, lower_bound t.codes hi_key)

let vertex_at t k = t.order.(k)

(* Binary search restricted to [lo, hi) — used when the containing cell's
   slice is already known, so the probe count is logarithmic in the cell
   population instead of in the whole vertex set. *)
let lower_bound_in (codes : int array) ~lo ~hi (key : int) =
  let lo = ref lo and hi = ref hi in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if codes.(mid) < key then lo := mid + 1 else hi := mid
  done;
  !lo

let child_bounds t ~child_level ~code ~lo ~hi out =
  check_level t child_level;
  let kids = 1 lsl t.dim in
  let shift = t.dim * (t.max_level - child_level) in
  let base = code lsl t.dim in
  out.(0) <- lo;
  out.(kids) <- hi;
  for k = 1 to kids - 1 do
    out.(k) <- lower_bound_in t.codes ~lo ~hi ((base lor k) lsl shift)
  done

let iter_cell t ~level ~code f =
  check_level t level;
  let shift = t.dim * (t.max_level - level) in
  let lo = lower_bound t.codes (code lsl shift) in
  let hi = lower_bound t.codes ((code + 1) lsl shift) in
  for k = lo to hi - 1 do
    f t.order.(k)
  done

let count_cell t ~level ~code =
  check_level t level;
  let shift = t.dim * (t.max_level - level) in
  lower_bound t.codes ((code + 1) lsl shift) - lower_bound t.codes (code lsl shift)

let nonempty_cells t ~level =
  let shift = t.dim * (t.max_level - level) in
  let rec collect k acc =
    if k < 0 then acc
    else begin
      let code = t.codes.(k) lsr shift in
      match acc with
      | c :: _ when c = code -> collect (k - 1) acc
      | _ -> collect (k - 1) (code :: acc)
    end
  in
  collect (Array.length t.codes - 1) []
