type point = float array

type norm = Linf | L2 | L1

let coord_dist a b =
  let d = abs_float (a -. b) in
  if d > 0.5 then 1.0 -. d else d

let check_dims x y =
  if Array.length x <> Array.length y then
    invalid_arg "Torus: dimension mismatch"

let dist_linf x y =
  check_dims x y;
  let acc = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    let d = coord_dist x.(i) y.(i) in
    if d > !acc then acc := d
  done;
  !acc

let dist_l2 x y =
  check_dims x y;
  let acc = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    let d = coord_dist x.(i) y.(i) in
    acc := !acc +. (d *. d)
  done;
  sqrt !acc

let dist_l1 x y =
  check_dims x y;
  let acc = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    acc := !acc +. coord_dist x.(i) y.(i)
  done;
  !acc

let dist ?(norm = Linf) x y =
  match norm with Linf -> dist_linf x y | L2 -> dist_l2 x y | L1 -> dist_l1 x y

let dist_fn = function Linf -> dist_linf | L2 -> dist_l2 | L1 -> dist_l1

(* ------------------------------------------------------------------ *)
(* Structure-of-arrays position store.

   One contiguous dim-strided [float array] replaces the array-of-points
   layout on the hot paths: a distance evaluation then touches exactly one
   cache line of coordinate data instead of chasing a per-vertex pointer,
   and the [(norm, dim)]-specialised kernels below compile to straight-line
   float code with no per-call dimension check.  Every kernel performs the
   same operations in the same order as the generic loops above, so the
   produced floats are bit-identical — the contract the routing golden
   tests pin. *)

module Packed = struct
  type t = { dim : int; n : int; data : float array }

  let of_points ~dim points =
    if dim < 1 then invalid_arg "Torus.Packed.of_points: dim must be >= 1";
    let n = Array.length points in
    let data = Array.make (max 1 (n * dim)) 0.0 in
    for v = 0 to n - 1 do
      let p = points.(v) in
      if Array.length p <> dim then invalid_arg "Torus.Packed.of_points: dimension mismatch";
      Array.blit p 0 data (v * dim) dim
    done;
    { dim; n; data }

  let dim t = t.dim
  let length t = t.n
  let data t = t.data

  let get t v = Array.sub t.data (v * t.dim) t.dim

  let coord t v i = t.data.((v * t.dim) + i)

  (* Strided kernels against a fixed query point.  The generic loops mirror
     [dist_linf]/[dist_l2]/[dist_l1] exactly (same accumulation order); the
     dim <= 3 specialisations unroll them without reassociating. *)

  let linf_to data ~dim ~base (q : point) =
    let acc = ref 0.0 in
    for i = 0 to dim - 1 do
      let d = coord_dist data.(base + i) q.(i) in
      if d > !acc then acc := d
    done;
    !acc

  let l2_to data ~dim ~base (q : point) =
    let acc = ref 0.0 in
    for i = 0 to dim - 1 do
      let d = coord_dist data.(base + i) q.(i) in
      acc := !acc +. (d *. d)
    done;
    sqrt !acc

  let l1_to data ~dim ~base (q : point) =
    let acc = ref 0.0 in
    for i = 0 to dim - 1 do
      acc := !acc +. coord_dist data.(base + i) q.(i)
    done;
    !acc

  let dist_to_fn t norm : int -> point -> float =
    let data = t.data in
    match (norm, t.dim) with
    | Linf, 1 -> fun v q -> coord_dist data.(v) q.(0)
    | Linf, 2 ->
        fun v q ->
          let b = 2 * v in
          let d0 = coord_dist data.(b) q.(0) in
          let d1 = coord_dist data.(b + 1) q.(1) in
          if d1 > d0 then d1 else d0
    | Linf, 3 ->
        fun v q ->
          let b = 3 * v in
          let d0 = coord_dist data.(b) q.(0) in
          let d1 = coord_dist data.(b + 1) q.(1) in
          let d2 = coord_dist data.(b + 2) q.(2) in
          let m = if d1 > d0 then d1 else d0 in
          if d2 > m then d2 else m
    | Linf, dim -> fun v q -> linf_to data ~dim ~base:(v * dim) q
    | L2, 1 -> fun v q -> sqrt (let d = coord_dist data.(v) q.(0) in d *. d)
    | L2, 2 ->
        fun v q ->
          let b = 2 * v in
          let d0 = coord_dist data.(b) q.(0) in
          let d1 = coord_dist data.(b + 1) q.(1) in
          sqrt ((d0 *. d0) +. (d1 *. d1))
    | L2, 3 ->
        fun v q ->
          let b = 3 * v in
          let d0 = coord_dist data.(b) q.(0) in
          let d1 = coord_dist data.(b + 1) q.(1) in
          let d2 = coord_dist data.(b + 2) q.(2) in
          sqrt ((d0 *. d0) +. (d1 *. d1) +. (d2 *. d2))
    | L2, dim -> fun v q -> l2_to data ~dim ~base:(v * dim) q
    | L1, 1 -> fun v q -> coord_dist data.(v) q.(0)
    | L1, 2 ->
        fun v q ->
          let b = 2 * v in
          coord_dist data.(b) q.(0) +. coord_dist data.(b + 1) q.(1)
    | L1, 3 ->
        fun v q ->
          let b = 3 * v in
          coord_dist data.(b) q.(0) +. coord_dist data.(b + 1) q.(1)
          +. coord_dist data.(b + 2) q.(2)
    | L1, dim -> fun v q -> l1_to data ~dim ~base:(v * dim) q

  (* Same specialisation, between two stored vertices — the inner loop of
     the edge samplers. *)
  let dist_between_fn t norm : int -> int -> float =
    let data = t.data in
    match (norm, t.dim) with
    | Linf, 1 -> fun u v -> coord_dist data.(u) data.(v)
    | Linf, 2 ->
        fun u v ->
          let bu = 2 * u and bv = 2 * v in
          let d0 = coord_dist data.(bu) data.(bv) in
          let d1 = coord_dist data.(bu + 1) data.(bv + 1) in
          if d1 > d0 then d1 else d0
    | Linf, 3 ->
        fun u v ->
          let bu = 3 * u and bv = 3 * v in
          let d0 = coord_dist data.(bu) data.(bv) in
          let d1 = coord_dist data.(bu + 1) data.(bv + 1) in
          let d2 = coord_dist data.(bu + 2) data.(bv + 2) in
          let m = if d1 > d0 then d1 else d0 in
          if d2 > m then d2 else m
    | L2, 1 -> fun u v -> sqrt (let d = coord_dist data.(u) data.(v) in d *. d)
    | L2, 2 ->
        fun u v ->
          let bu = 2 * u and bv = 2 * v in
          let d0 = coord_dist data.(bu) data.(bv) in
          let d1 = coord_dist data.(bu + 1) data.(bv + 1) in
          sqrt ((d0 *. d0) +. (d1 *. d1))
    | L2, 3 ->
        fun u v ->
          let bu = 3 * u and bv = 3 * v in
          let d0 = coord_dist data.(bu) data.(bv) in
          let d1 = coord_dist data.(bu + 1) data.(bv + 1) in
          let d2 = coord_dist data.(bu + 2) data.(bv + 2) in
          sqrt ((d0 *. d0) +. (d1 *. d1) +. (d2 *. d2))
    | L1, 1 -> fun u v -> coord_dist data.(u) data.(v)
    | L1, 2 ->
        fun u v ->
          let bu = 2 * u and bv = 2 * v in
          coord_dist data.(bu) data.(bv) +. coord_dist data.(bu + 1) data.(bv + 1)
    | L1, 3 ->
        fun u v ->
          let bu = 3 * u and bv = 3 * v in
          coord_dist data.(bu) data.(bv) +. coord_dist data.(bu + 1) data.(bv + 1)
          +. coord_dist data.(bu + 2) data.(bv + 2)
    | (Linf | L2 | L1), dim ->
        let dst = match norm with Linf -> linf_to | L2 -> l2_to | L1 -> l1_to in
        (* Generic fallback reuses the query-point kernels on a scratch-free
           slice view by passing the second vertex's coordinates directly. *)
        fun u v ->
          let q = Array.sub data (v * dim) dim in
          dst data ~dim ~base:(u * dim) q
end

let random_point rng ~dim = Array.init dim (fun _ -> Prng.Rng.unit_float rng)

let wrap x =
  let f = x -. Float.of_int (int_of_float (floor x)) in
  if f >= 1.0 then f -. 1.0 else if f < 0.0 then f +. 1.0 else f

let add x y =
  check_dims x y;
  Array.init (Array.length x) (fun i -> wrap (x.(i) +. y.(i)))

let ball_volume ~dim ~radius =
  if radius <= 0.0 then 0.0
  else Float.min 1.0 ((2.0 *. radius) ** float_of_int dim)

let ball_radius_of_volume ~dim ~volume =
  if volume <= 0.0 then 0.0
  else (Float.min 1.0 volume ** (1.0 /. float_of_int dim)) /. 2.0

let to_string p =
  let coords = Array.to_list (Array.map (Printf.sprintf "%.4f") p) in
  "(" ^ String.concat ", " coords ^ ")"
