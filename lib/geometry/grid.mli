(** A Morton-sorted spatial index over a set of points of [T^d].

    Building sorts the given vertex ids by their deepest-level Morton code;
    after that, the members of any cell at any level [0..max_level] form a
    contiguous slice of the sorted order, found by binary search.  This is the
    backbone of the near-linear GIRG sampler and of nearest-neighbour style
    queries. *)

type t

val build : dim:int -> max_level:int -> points:Torus.point array -> ids:int array -> t
(** [build ~dim ~max_level ~points ~ids] indexes the vertices listed in [ids];
    [points] is indexed by vertex id (it may contain more points than [ids]).
    @raise Invalid_argument if [max_level] exceeds [Morton.max_level ~dim]. *)

val dim : t -> int
val max_level : t -> int

val size : t -> int
(** Number of indexed vertices. *)

val cell_range : t -> level:int -> code:int -> int * int
(** [cell_range t ~level ~code] is the half-open slice [(lo, hi)] of sorted
    positions whose vertices lie in the given cell. *)

val vertex_at : t -> int -> int
(** [vertex_at t k] is the vertex id at sorted position [k]. *)

val iter_cell : t -> level:int -> code:int -> (int -> unit) -> unit
(** Apply a function to every vertex id in a cell. *)

val count_cell : t -> level:int -> code:int -> int
(** Number of indexed vertices in a cell. *)

val child_bounds : t -> child_level:int -> code:int -> lo:int -> hi:int -> int array -> unit
(** [child_bounds t ~child_level ~code ~lo ~hi out] writes into
    [out.(0 .. 2^dim)] the slice boundaries of the [2^dim] children of cell
    [code] (which lives at [child_level - 1] and spans sorted positions
    [lo, hi)): child [k] occupies positions [out.(k), out.(k+1)).  Searching
    only within the parent's slice makes a whole enumeration pass cheaper
    than independent {!cell_range} calls per child.  [out] must have length
    at least [2^dim + 1]. *)

val nonempty_cells : t -> level:int -> int list
(** Codes of the distinct nonempty cells at [level], ascending. *)
