(** The d-dimensional unit torus [T^d = R^d / Z^d].

    Points are float arrays of length [d] with coordinates in [[0, 1)].  The
    paper's default metric is the wrap-around L∞ (max) norm; L1 and L2 are
    provided because the GIRG definition is norm-agnostic up to constants. *)

type point = float array

type norm = Linf | L2 | L1

val coord_dist : float -> float -> float
(** [coord_dist a b] is the 1-dimensional wrap-around distance
    [min (|a - b|) (1 - |a - b|)], always in [[0, 1/2]]. *)

val dist : ?norm:norm -> point -> point -> float
(** [dist x y] is the toroidal distance under [norm] (default [Linf]).
    @raise Invalid_argument if dimensions differ. *)

val dist_linf : point -> point -> float
(** Specialised L∞ distance (the hot path of every sampler and router). *)

val dist_fn : norm -> point -> point -> float
(** The distance function for a norm, resolved once (for hot loops).
    Note [dist_linf x y <= dist_fn L2 x y <= dist_fn L1 x y] pointwise, so
    L∞-based cell separation bounds lower-bound every supported norm. *)

val random_point : Prng.Rng.t -> dim:int -> point
(** A uniform point of [T^d]. *)

val wrap : float -> float
(** [wrap x] maps [x] into [[0, 1)] by taking the fractional part. *)

val add : point -> point -> point
(** Coordinate-wise addition modulo 1. *)

val ball_volume : dim:int -> radius:float -> float
(** Volume of an L∞ ball of radius [r] on the torus:
    [min 1 ((2 r)^d)]. *)

val ball_radius_of_volume : dim:int -> volume:float -> float
(** Inverse of {!ball_volume} for volumes in [[0, 1]]. *)

val to_string : point -> string
(** Human-readable rendering, e.g. ["(0.25, 0.75)"]. *)

(** Structure-of-arrays position store: all coordinates in one contiguous
    dim-strided [float array].  The [dist_*_fn] selectors resolve a
    [(norm, dim)]-specialised kernel once, outside the hot loop; each kernel
    performs the same floating-point operations in the same order as the
    generic {!dist} loops, so distances (and everything derived from them)
    are bit-identical to the array-of-points path. *)
module Packed : sig
  type t

  val of_points : dim:int -> point array -> t
  (** Pack an array of [dim]-dimensional points.
      @raise Invalid_argument if a point has the wrong dimension. *)

  val dim : t -> int
  val length : t -> int
  (** Number of stored points. *)

  val data : t -> float array
  (** The backing buffer, length [length * dim]; vertex [v]'s coordinates
      occupy indices [v*dim .. v*dim + dim - 1].  Exposed for flat inner
      loops; treat as read-only. *)

  val get : t -> int -> point
  (** Fresh copy of vertex [v]'s coordinates (cold paths only). *)

  val coord : t -> int -> int -> float
  (** [coord t v i] is coordinate [i] of vertex [v]. *)

  val dist_to_fn : t -> norm -> int -> point -> float
  (** [dist_to_fn t norm] resolves once to a kernel mapping [(v, q)] to the
      toroidal distance between stored vertex [v] and query point [q].
      Specialised (branch-free straight-line code) for [dim <= 3]. *)

  val dist_between_fn : t -> norm -> int -> int -> float
  (** Same, between two stored vertices — the edge samplers' inner loop. *)
end
