let max_level ~dim = 62 / dim

let check ~dim ~level =
  if dim < 1 then invalid_arg "Morton: dim must be >= 1";
  if level < 0 || level > max_level ~dim then invalid_arg "Morton: level out of range"

let encode ~dim ~level coords =
  check ~dim ~level;
  let code = ref 0 in
  for b = 0 to level - 1 do
    for i = 0 to dim - 1 do
      let bit = (coords.(i) lsr b) land 1 in
      code := !code lor (bit lsl ((b * dim) + i))
    done
  done;
  !code

(* Allocation-free decode for hot loops: writes the cell coordinates of
   [code] into the caller's scratch buffer (length >= dim). *)
let decode_into ~dim ~level code ~into:coords =
  for i = 0 to dim - 1 do
    coords.(i) <- 0
  done;
  for b = 0 to level - 1 do
    for i = 0 to dim - 1 do
      let bit = (code lsr ((b * dim) + i)) land 1 in
      coords.(i) <- coords.(i) lor (bit lsl b)
    done
  done

let decode ~dim ~level code =
  check ~dim ~level;
  let coords = Array.make dim 0 in
  decode_into ~dim ~level code ~into:coords;
  coords

let cell_coords_of_point ~dim ~level p =
  let cells_per_side = 1 lsl level in
  let scale = float_of_int cells_per_side in
  Array.init dim (fun i ->
      let c = int_of_float (p.(i) *. scale) in
      (* Guard against coordinates exactly at 1.0 after rounding. *)
      if c >= cells_per_side then cells_per_side - 1 else if c < 0 then 0 else c)

let code_of_point ~dim ~level p = encode ~dim ~level (cell_coords_of_point ~dim ~level p)

let parent ~dim code = code lsr dim

let to_level ~dim ~from_level ~to_level code =
  if to_level > from_level then invalid_arg "Morton.to_level: cannot refine";
  code lsr (dim * (from_level - to_level))

let iter_neighbors ~dim ~level code f =
  check ~dim ~level;
  if level = 0 then f code
  else begin
    let cells_per_side = 1 lsl level in
    let base = decode ~dim ~level code in
    let offsets_per_dim = if cells_per_side >= 3 then 3 else cells_per_side in
    let coords = Array.make dim 0 in
    (* Enumerate offset vectors in {-1,0,1}^dim (deduplicated when the grid
       has fewer than 3 cells per side). *)
    let rec loop i =
      if i = dim then f (encode ~dim ~level coords)
      else
        for o = 0 to offsets_per_dim - 1 do
          let delta = if offsets_per_dim = 3 then o - 1 else o in
          coords.(i) <- (base.(i) + delta + cells_per_side) mod cells_per_side;
          loop (i + 1)
        done
    in
    loop 0
  end

let cell_side ~level = 1.0 /. float_of_int (1 lsl level)

let cell_min_dist ~dim ~level a b =
  let cells_per_side = 1 lsl level in
  let ca = decode ~dim ~level a and cb = decode ~dim ~level b in
  let side = cell_side ~level in
  let worst = ref 0 in
  for i = 0 to dim - 1 do
    let d = abs (ca.(i) - cb.(i)) in
    let d = min d (cells_per_side - d) in
    let gap = if d <= 1 then 0 else d - 1 in
    if gap > !worst then worst := gap
  done;
  float_of_int !worst *. side
