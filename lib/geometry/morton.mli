(** Morton (z-order) codes for hierarchical grids on the torus.

    A level-[l] grid splits [T^d] into [2^(l*d)] cubic cells, [2^l] per side.
    The Morton code of a cell interleaves the bits of its integer coordinates,
    so that the cells of a coarser level are exactly the code *prefixes*: a
    vertex array sorted by deepest-level code is simultaneously sorted for
    every level, and each cell at each level is one contiguous slice. *)

val max_level : dim:int -> int
(** Deepest usable level for dimension [dim] (codes must fit in 62 bits). *)

val encode : dim:int -> level:int -> int array -> int
(** [encode ~dim ~level coords] interleaves the [dim] coordinates (each in
    [[0, 2^level)]) into a Morton code. *)

val decode : dim:int -> level:int -> int -> int array
(** Inverse of {!encode}. *)

val decode_into : dim:int -> level:int -> int -> into:int array -> unit
(** Allocation-free {!decode}: overwrites the first [dim] entries of
    [into] with the coordinates of the cell.  No bounds or level
    validation — intended for hot loops that have already checked. *)

val cell_coords_of_point : dim:int -> level:int -> Torus.point -> int array
(** Integer cell coordinates of the cell containing the point. *)

val code_of_point : dim:int -> level:int -> Torus.point -> int
(** [encode] of {!cell_coords_of_point}. *)

val parent : dim:int -> int -> int
(** Code of the enclosing cell one level up. *)

val to_level : dim:int -> from_level:int -> to_level:int -> int -> int
(** [to_level ~dim ~from_level ~to_level code] converts a code between levels
    ([to_level <= from_level]): the ancestor cell's code. *)

val iter_neighbors : dim:int -> level:int -> int -> (int -> unit) -> unit
(** [iter_neighbors ~dim ~level code f] applies [f] to the codes of all cells
    whose coordinates differ from [code]'s by at most 1 in every dimension,
    with toroidal wrap-around — including [code] itself.  Visits each distinct
    cell exactly once (at level 0 this is just the single cell; at level 1
    each axis has only 2 distinct cells). *)

val cell_side : level:int -> float
(** Side length [2^-level] of a cell. *)

val cell_min_dist : dim:int -> level:int -> int -> int -> float
(** Minimum possible L∞ distance between a point of the first cell and a point
    of the second cell (toroidal); 0 for identical or touching cells. *)
