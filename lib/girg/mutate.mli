(** Live-graph mutations over a generated instance.

    An instance's geometry (weights, positions, kernel parameters) is
    immutable; mutation changes only the edge set, via the copy-on-write
    delta of {!Sparse_graph.Graph}.  One {!apply} call is one epoch:
    every op in the batch lands in the same graph version.

    Determinism contract: {!Resample} draws each candidate partner from
    a {!Prng.Rng.of_mixed_triple} substream keyed on
    [(seed, epoch, vertex, partner)], so replaying the same op script
    with the same seed against the same instance yields bit-identical
    graphs at every epoch — independent of evaluation order, job count,
    and of whether the base CSR is heap-built or mmap'd. *)

type op =
  | Leave of int  (** the vertex departs (overlay edges are lost for good) *)
  | Rejoin of int  (** the vertex returns with its surviving base edges *)
  | Drop of int * int  (** remove one edge from the merged view *)
  | Resample of int
      (** drop the vertex's current edges and re-draw them from the
          instance's own connection kernel; no-op on a departed vertex *)

val op_to_string : op -> string
(** Wire/CLI spelling: [leave:V | rejoin:V | drop:U:V | resample:V]. *)

val op_of_string : string -> (op, string) result

val ops_of_strings : string list -> (op list, string) result
(** First parse error wins. *)

val validate : n:int -> op list -> (unit, string) result
(** Range-checks every vertex (and rejects [drop] self-loops) without
    touching the graph, so callers can reject a bad script with a
    caller error instead of an exception mid-apply. *)

val apply : seed:int -> Instance.t -> op list -> Instance.t
(** [apply ~seed inst ops] applies the script in order as one epoch
    ([Graph.epoch] of the result is one above the input's — an empty
    script still advances the version) and returns
    the new instance; [inst] is unchanged and stays routable (readers
    pin the version they hold).
    @raise Invalid_argument on out-of-range vertices — call {!validate}
    first on untrusted input. *)
