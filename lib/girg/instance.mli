(** Geometric inhomogeneous random graphs (Section 2.1 of the paper).

    An instance bundles the sampled weights, positions, and the resulting
    graph; the routing protocols of [greedy_routing] take instances of this
    type (or anything exposing the same data). *)

type sampler =
  | Auto  (** {!Cell} above {!threshold_n} vertices, {!Naive} below *)
  | Use_naive
  | Use_cell

type t = {
  params : Params.t;
  weights : float array;
  positions : Geometry.Torus.point array;
  packed : Geometry.Torus.Packed.t;
      (** Same coordinates as [positions], flat dim-strided — the routing
          hot paths read this (see {!Geometry.Torus.Packed}). *)
  graph : Sparse_graph.Graph.t;
}

val threshold_n : int
(** Instance size below which [Auto] prefers the naive sampler (small graphs
    build faster without the grid machinery). *)

val sample_weights : rng:Prng.Rng.t -> params:Params.t -> count:int -> float array
(** Power-law weights: density proportional to [w^-beta] on [w >= w_min]. *)

val sample_positions :
  rng:Prng.Rng.t -> params:Params.t -> count:int -> Geometry.Torus.point array
(** Independent uniform positions on [T^dim]. *)

val vertex_count : rng:Prng.Rng.t -> params:Params.t -> int
(** Poisson(n) when [params.poisson_count], else exactly [n]. *)

type vertex_data = {
  count : int;  (** realised vertex count (after any Poisson draw) *)
  v_weights : float array;
  v_positions : Geometry.Torus.point array;
  rng_edges : Prng.Rng.t;  (** the substream edge sampling consumes *)
}

val derive_vertex_data : rng:Prng.Rng.t -> Params.t -> vertex_data
(** The deterministic prefix of {!generate}: splits [rng] into the
    per-stage substreams and draws count, weights and positions.  A shard
    process calls this with [Prng.Rng.create ~seed] to reproduce exactly
    the vertex data and edge-rng that single-process generation uses —
    the foundation of the sharded pipeline's bit-identity guarantee. *)

val generate : ?sampler:sampler -> ?pool:Parallel.Pool.t -> rng:Prng.Rng.t -> Params.t -> t
(** Sample a complete instance: vertex count, weights, positions, edges.
    The rng is split into independent substreams per stage, so e.g. the
    weights of instance [k] do not depend on which sampler was used.
    Edge sampling runs on [pool] (default: the shared {!Parallel.Global}
    pool) and is bit-reproducible for any job count — see {!Cell}. *)

val generate_with :
  ?sampler:sampler ->
  ?pool:Parallel.Pool.t ->
  rng:Prng.Rng.t ->
  params:Params.t ->
  weights:float array ->
  positions:Geometry.Torus.point array ->
  unit ->
  t
(** Build an instance from externally chosen weights/positions (used to pin
    source/target vertices adversarially, as the paper's theorems allow). *)

val generate_pinned :
  ?sampler:sampler ->
  ?pool:Parallel.Pool.t ->
  rng:Prng.Rng.t ->
  params:Params.t ->
  pinned:(float * Geometry.Torus.point) list ->
  unit ->
  t
(** The adversarial setting of the paper's theorems: "an adversary may pick
    weights and positions of s and t, while the remaining vertices and all
    edges are drawn randomly".  The k pinned (weight, position) pairs become
    vertices [0 .. k-1]; everything else is sampled as in {!generate}.
    @raise Invalid_argument if a pinned weight is below [w_min] or a pinned
    position has the wrong dimension. *)

val connection_prob : t -> int -> int -> float
(** Exact connection probability of a vertex pair in this instance: the
    quantity greedy routing maximises towards the target. *)

val expected_avg_weight : Params.t -> float
(** Mean of the weight distribution: [w_min (beta-1)/(beta-2)]. *)
