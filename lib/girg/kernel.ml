type t = {
  name : string;
  dim : int;
  norm : Geometry.Torus.norm;
  prob : wu:float -> wv:float -> dist:float -> float;
  prob_packed : (Geometry.Torus.Packed.t -> float array -> int -> int -> float) option;
  upper : wu_ub:float -> wv_ub:float -> min_dist:float -> float;
  saturation_volume : wu_ub:float -> wv_ub:float -> float;
  weight_cap : float;
}

(* [dist^d] without the general [( ** )] for the common small dimensions. *)
let dist_pow ~dim dist =
  match dim with
  | 1 -> dist
  | 2 -> dist *. dist
  | 3 -> dist *. dist *. dist
  | _ -> dist ** float_of_int dim

let girg_prob_fun (p : Params.t) =
  let denom = p.w_min *. float_of_int p.n in
  let dim = p.dim in
  let decay =
    match p.alpha with
    | Params.Infinite -> fun _ -> 0.0
    | Params.Finite a when Float.equal a 2.0 -> fun q -> q *. q
    | Params.Finite a when Float.equal a 3.0 -> fun q -> q *. q *. q
    | Params.Finite a -> fun q -> q ** a
  in
  let c = p.c in
  fun ~wu ~wv ~dist ->
    let dist_d = dist_pow ~dim dist in
    if dist_d <= 0.0 then 1.0
    else begin
      let q = c *. wu *. wv /. (denom *. dist_d) in
      if q >= 1.0 then 1.0 else decay q
    end

let girg_prob p ~wu ~wv ~dist = girg_prob_fun p ~wu ~wv ~dist

(* Fused trial kernel: distance, [dist^d] and connection probability in
   one straight line of float arithmetic over the packed coordinate
   store and the flat weight array.  The generic path crosses four
   closure boundaries per candidate pair ([dist_between_fn], [prob],
   [decay], and the sampler's own wrapper), each of which boxes its
   float arguments and result; at tens of millions of trials per graph
   that boxing dominates the sampler's allocation.  Every arm performs
   the same operations in the same order as [girg_prob_fun] composed
   with [Packed.dist_between_fn], so the returned floats are
   bit-identical (property-tested). *)
let girg_prob_packed_fun (p : Params.t) =
  let denom = p.w_min *. float_of_int p.n in
  let c = p.c in
  (* Mirrors the decay specialisation of [girg_prob_fun]: 0 = threshold,
     1 = square, 2 = cube, 3 = general power. *)
  let decay_tag, alpha_val =
    match p.alpha with
    | Params.Infinite -> (0, 0.0)
    | Params.Finite a when Float.equal a 2.0 -> (1, a)
    | Params.Finite a when Float.equal a 3.0 -> (2, a)
    | Params.Finite a -> (3, a)
  in
  fun packed weights ->
    let data = Geometry.Torus.Packed.data packed in
    let dim = Geometry.Torus.Packed.dim packed in
    
    match (p.norm, dim) with
    | Geometry.Torus.Linf, 1 ->
        fun u v ->
          let dist = Geometry.Torus.coord_dist data.(u) data.(v) in
          if dist <= 0.0 then 1.0
          else begin
            let q = c *. weights.(u) *. weights.(v) /. (denom *. dist) in
            if q >= 1.0 then 1.0
            else begin
              match decay_tag with
              | 0 -> 0.0
              | 1 -> q *. q
              | 2 -> q *. q *. q
              | _ -> q ** alpha_val
            end
          end
    | Geometry.Torus.Linf, 2 ->
        fun u v ->
          let bu = 2 * u and bv = 2 * v in
          let d0 = Geometry.Torus.coord_dist data.(bu) data.(bv) in
          let d1 = Geometry.Torus.coord_dist data.(bu + 1) data.(bv + 1) in
          let dist = if d1 > d0 then d1 else d0 in
          let dist_d = dist *. dist in
          if dist_d <= 0.0 then 1.0
          else begin
            let q = c *. weights.(u) *. weights.(v) /. (denom *. dist_d) in
            if q >= 1.0 then 1.0
            else begin
              match decay_tag with
              | 0 -> 0.0
              | 1 -> q *. q
              | 2 -> q *. q *. q
              | _ -> q ** alpha_val
            end
          end
    | Geometry.Torus.Linf, 3 ->
        fun u v ->
          let bu = 3 * u and bv = 3 * v in
          let d0 = Geometry.Torus.coord_dist data.(bu) data.(bv) in
          let d1 = Geometry.Torus.coord_dist data.(bu + 1) data.(bv + 1) in
          let d2 = Geometry.Torus.coord_dist data.(bu + 2) data.(bv + 2) in
          let m = if d1 > d0 then d1 else d0 in
          let dist = if d2 > m then d2 else m in
          let dist_d = dist *. dist *. dist in
          if dist_d <= 0.0 then 1.0
          else begin
            let q = c *. weights.(u) *. weights.(v) /. (denom *. dist_d) in
            if q >= 1.0 then 1.0
            else begin
              match decay_tag with
              | 0 -> 0.0
              | 1 -> q *. q
              | 2 -> q *. q *. q
              | _ -> q ** alpha_val
            end
          end
    | Geometry.Torus.L2, 2 ->
        fun u v ->
          let bu = 2 * u and bv = 2 * v in
          let d0 = Geometry.Torus.coord_dist data.(bu) data.(bv) in
          let d1 = Geometry.Torus.coord_dist data.(bu + 1) data.(bv + 1) in
          let dist = sqrt ((d0 *. d0) +. (d1 *. d1)) in
          let dist_d = dist *. dist in
          if dist_d <= 0.0 then 1.0
          else begin
            let q = c *. weights.(u) *. weights.(v) /. (denom *. dist_d) in
            if q >= 1.0 then 1.0
            else begin
              match decay_tag with
              | 0 -> 0.0
              | 1 -> q *. q
              | 2 -> q *. q *. q
              | _ -> q ** alpha_val
            end
          end
    | Geometry.Torus.L1, 2 ->
        fun u v ->
          let bu = 2 * u and bv = 2 * v in
          let dist = Geometry.Torus.coord_dist data.(bu) data.(bv) +. Geometry.Torus.coord_dist data.(bu + 1) data.(bv + 1) in
          let dist_d = dist *. dist in
          if dist_d <= 0.0 then 1.0
          else begin
            let q = c *. weights.(u) *. weights.(v) /. (denom *. dist_d) in
            if q >= 1.0 then 1.0
            else begin
              match decay_tag with
              | 0 -> 0.0
              | 1 -> q *. q
              | 2 -> q *. q *. q
              | _ -> q ** alpha_val
            end
          end
    | _ ->
        (* Exotic (norm, dim) combinations fall back to the packed
           distance kernel; the probability epilogue is still inline. *)
        let dist_uv = Geometry.Torus.Packed.dist_between_fn packed p.norm in
        fun u v ->
          let dist = dist_uv u v in
          let dist_d =
            match dim with
            | 1 -> dist
            | 2 -> dist *. dist
            | 3 -> dist *. dist *. dist
            | _ -> dist ** float_of_int dim
          in
          if dist_d <= 0.0 then 1.0
          else begin
            let q = c *. weights.(u) *. weights.(v) /. (denom *. dist_d) in
            if q >= 1.0 then 1.0
            else begin
              match decay_tag with
              | 0 -> 0.0
              | 1 -> q *. q
              | 2 -> q *. q *. q
              | _ -> q ** alpha_val
            end
          end

let girg (p : Params.t) =
  let p = Params.validate_exn p in
  let prob = girg_prob_fun p in
  (* [girg_prob] is nondecreasing in both weights and nonincreasing in the
     distance, so plugging the bounds straight in yields a valid envelope. *)
  let upper ~wu_ub ~wv_ub ~min_dist = girg_prob p ~wu:wu_ub ~wv:wv_ub ~dist:min_dist in
  let saturation_volume ~wu_ub ~wv_ub =
    p.c *. wu_ub *. wv_ub /. (p.w_min *. float_of_int p.n)
  in
  {
    name = Params.to_string p;
    dim = p.dim;
    norm = p.norm;
    prob;
    prob_packed = Some (girg_prob_packed_fun p);
    upper;
    saturation_volume;
    weight_cap = infinity;
  }
