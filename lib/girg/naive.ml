let c_candidate_pairs = Obs.Metrics.counter "girg.naive.candidate_pairs"

let sample_edges_buf ~rng ~kernel ~weights ~positions =
  let n = Array.length weights in
  if Array.length positions <> n then invalid_arg "Naive.sample_edges: length mismatch";
  Obs.Metrics.add c_candidate_pairs (n * (n - 1) / 2);
  let buf = Edge_buf.create () in
  (* SoA probe: same floats as the array-of-points path, one contiguous
     buffer instead of a pointer chase per pair; fused kernel when the
     model provides one (bit-identical values). *)
  let packed = Geometry.Torus.Packed.of_points ~dim:kernel.Kernel.dim positions in
  let prob_uv =
    match kernel.Kernel.prob_packed with
    | Some mk -> mk packed weights
    | None ->
        let dist_uv = Geometry.Torus.Packed.dist_between_fn packed kernel.Kernel.norm in
        fun u v -> kernel.Kernel.prob ~wu:weights.(u) ~wv:weights.(v) ~dist:(dist_uv u v)
  in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let p = prob_uv u v in
      if p > 0.0 && (p >= 1.0 || Prng.Rng.unit_float rng < p) then Edge_buf.push buf u v
    done
  done;
  buf

let sample_edges ~rng ~kernel ~weights ~positions =
  Edge_buf.to_array (sample_edges_buf ~rng ~kernel ~weights ~positions)
