let c_candidate_pairs = Obs.Metrics.counter "girg.naive.candidate_pairs"

let sample_edges ~rng ~kernel ~weights ~positions =
  let n = Array.length weights in
  if Array.length positions <> n then invalid_arg "Naive.sample_edges: length mismatch";
  Obs.Metrics.add c_candidate_pairs (n * (n - 1) / 2);
  let buf = Edge_buf.create () in
  let prob = kernel.Kernel.prob in
  let dist_fn = Geometry.Torus.dist_fn kernel.Kernel.norm in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let dist = dist_fn positions.(u) positions.(v) in
      let p = prob ~wu:weights.(u) ~wv:weights.(v) ~dist in
      if p > 0.0 && (p >= 1.0 || Prng.Rng.unit_float rng < p) then Edge_buf.push buf u v
    done
  done;
  Edge_buf.to_array buf
