type sampler = Auto | Use_naive | Use_cell

type t = {
  params : Params.t;
  weights : float array;
  positions : Geometry.Torus.point array;
  packed : Geometry.Torus.Packed.t;
  graph : Sparse_graph.Graph.t;
}

let threshold_n = 600

let c_instances = Obs.Metrics.counter "girg.instances"
let c_vertices = Obs.Metrics.counter "girg.vertices"
let c_edges = Obs.Metrics.counter "girg.edges_accepted"
let c_type1 = Obs.Metrics.counter "girg.cell.type1_pairs"
let c_type2 = Obs.Metrics.counter "girg.cell.type2_trials"
let c_cells = Obs.Metrics.counter "girg.cell.cells_visited"

let sample_weights ~rng ~params ~count =
  Array.init count (fun _ ->
      Prng.Dist.pareto rng ~x_min:params.Params.w_min ~exponent:params.Params.beta)

let sample_positions ~rng ~params ~count =
  Array.init count (fun _ -> Geometry.Torus.random_point rng ~dim:params.Params.dim)

let vertex_count ~rng ~params =
  if params.Params.poisson_count then
    Prng.Dist.poisson rng ~mean:(float_of_int params.Params.n)
  else params.Params.n

let generate_with ?(sampler = Auto) ?pool ~rng ~params ~weights ~positions () =
  let params = Params.validate_exn params in
  let count = Array.length weights in
  if Array.length positions <> count then invalid_arg "Instance.generate_with: length mismatch";
  let kernel = Kernel.girg params in
  let buf =
    Obs.Span.with_ ~name:"girg.sample_edges" (fun () ->
        let use_cell =
          match sampler with
          | Use_cell -> true
          | Use_naive -> false
          | Auto -> count > threshold_n
        in
        if use_cell then begin
          let buf, stats = Cell.sample_edges_buf_stats ?pool ~rng ~kernel ~weights ~positions () in
          Obs.Metrics.add c_type1 stats.Cell.type1_pairs;
          Obs.Metrics.add c_type2 stats.Cell.type2_trials;
          Obs.Metrics.add c_cells stats.Cell.cells_visited;
          buf
        end
        else Naive.sample_edges_buf ~rng ~kernel ~weights ~positions)
  in
  Obs.Metrics.incr c_instances;
  Obs.Metrics.add c_vertices count;
  Obs.Metrics.add c_edges (Edge_buf.length buf);
  let graph =
    Obs.Span.with_ ~name:"girg.build_graph" (fun () ->
        Sparse_graph.Graph.of_flat_halves ~n:count ~len:(Edge_buf.flat_len buf)
          (Edge_buf.flat buf))
  in
  let packed = Geometry.Torus.Packed.of_points ~dim:params.Params.dim positions in
  { params; weights; positions; packed; graph }

type vertex_data = {
  count : int;
  v_weights : float array;
  v_positions : Geometry.Torus.point array;
  rng_edges : Prng.Rng.t;
}

(* The deterministic prefix of [generate]: split the caller's rng into the
   per-stage substreams and draw count/weights/positions.  Factored out so a
   shard process can reproduce, from (seed, params) alone, exactly the
   vertex data and edge-rng that single-process generation would use. *)
let derive_vertex_data ~rng params =
  let params = Params.validate_exn params in
  let rng_count = Prng.Rng.split rng in
  let rng_weights = Prng.Rng.split rng in
  let rng_positions = Prng.Rng.split rng in
  let rng_edges = Prng.Rng.split rng in
  let count = vertex_count ~rng:rng_count ~params in
  let v_weights =
    Obs.Span.with_ ~name:"girg.sample_weights" (fun () ->
        sample_weights ~rng:rng_weights ~params ~count)
  in
  let v_positions =
    Obs.Span.with_ ~name:"girg.sample_positions" (fun () ->
        sample_positions ~rng:rng_positions ~params ~count)
  in
  { count; v_weights; v_positions; rng_edges }

let generate ?(sampler = Auto) ?pool ~rng params =
  Obs.Span.with_ ~name:"girg.generate" (fun () ->
      let params = Params.validate_exn params in
      let vd = derive_vertex_data ~rng params in
      generate_with ~sampler ?pool ~rng:vd.rng_edges ~params ~weights:vd.v_weights
        ~positions:vd.v_positions ())

let generate_pinned ?(sampler = Auto) ?pool ~rng ~params ~pinned () =
  let params = Params.validate_exn params in
  List.iter
    (fun ((w : float), x) ->
      if w < params.Params.w_min then
        invalid_arg "Girg.generate_pinned: pinned weight below w_min";
      if Array.length x <> params.Params.dim then
        invalid_arg "Girg.generate_pinned: pinned position has wrong dimension")
    pinned;
  let rng_count = Prng.Rng.split rng in
  let rng_weights = Prng.Rng.split rng in
  let rng_positions = Prng.Rng.split rng in
  let rng_edges = Prng.Rng.split rng in
  let k = List.length pinned in
  let count = max k (vertex_count ~rng:rng_count ~params) in
  let weights = sample_weights ~rng:rng_weights ~params ~count in
  let positions = sample_positions ~rng:rng_positions ~params ~count in
  List.iteri
    (fun i (w, x) ->
      weights.(i) <- w;
      positions.(i) <- Array.copy x)
    pinned;
  generate_with ~sampler ?pool ~rng:rng_edges ~params ~weights ~positions ()

let connection_prob t u v =
  let dist = Geometry.Torus.dist_fn t.params.Params.norm t.positions.(u) t.positions.(v) in
  Kernel.girg_prob t.params ~wu:t.weights.(u) ~wv:t.weights.(v) ~dist

let expected_avg_weight (p : Params.t) = p.w_min *. (p.beta -. 1.0) /. (p.beta -. 2.0)
