let sample_edges_buf ~rng ~weights =
  let n = Array.length weights in
  let buf = Edge_buf.create () in
  if n >= 2 then begin
    let total = Array.fold_left ( +. ) 0.0 weights in
    (* Vertex ids sorted by decreasing weight: the candidate probability is
       then non-increasing along the inner scan, which the skip-sampling
       envelope needs. *)
    let order = Array.init n Fun.id in
    Array.sort (fun a b -> compare weights.(b) weights.(a)) order;
    let w k = weights.(order.(k)) in
    for i = 0 to n - 2 do
      let j = ref (i + 1) in
      let p = ref (Float.min 1.0 (w i *. w !j /. total)) in
      while !j < n && !p > 0.0 do
        let skip = Prng.Dist.geometric rng ~p:!p in
        j := if skip > n then n else !j + skip;
        if !j < n then begin
          let q = Float.min 1.0 (w i *. w !j /. total) in
          if q >= !p || Prng.Rng.unit_float rng < q /. !p then
            Edge_buf.push buf order.(i) order.(!j);
          p := q;
          incr j
        end
      done
    done
  end;
  buf

let sample_edges ~rng ~weights = Edge_buf.to_array (sample_edges_buf ~rng ~weights)

type t = { weights : float array; graph : Sparse_graph.Graph.t }

let generate ~rng ~weights =
  let buf = sample_edges_buf ~rng ~weights in
  let graph =
    Sparse_graph.Graph.of_flat_halves ~n:(Array.length weights)
      ~len:(Edge_buf.flat_len buf) (Edge_buf.flat buf)
  in
  { weights; graph }

let generate_power_law ~rng ~n ~beta ~w_min =
  let weights =
    Array.init n (fun _ -> Prng.Dist.pareto rng ~x_min:w_min ~exponent:beta)
  in
  generate ~rng ~weights
