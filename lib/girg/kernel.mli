(** Edge-probability kernels.

    A kernel packages everything a sampler needs to know about the edge
    distribution of a geometric model:

    - [prob ~wu ~wv ~dist]: the exact connection probability of a vertex pair
      with the given weights at the given toroidal distance;
    - [upper ~wu_ub ~wv_ub ~min_dist]: an upper bound on [prob] valid for all
      weights below the bounds and all distances above [min_dist] — the
      rejection envelope of the cell sampler's type-II skip sampling;
    - [saturation_volume ~wu_ub ~wv_ub]: the distance^d scale below which
      [upper] stops being informative (≈ 1); the cell sampler picks the grid
      level of a weight-layer pair so that one cell has about this volume;
    - [weight_cap]: weights at or above the cap break the monotonicity of the
      bound (only hyperbolic kernels have a finite cap); the cell sampler
      handles such vertices exhaustively against everyone.

    Invariant required of every kernel: for all [wu <= wu_ub], [wv <= wv_ub],
    [dist >= min_dist > 0]:
    [prob ~wu ~wv ~dist <= upper ~wu_ub ~wv_ub ~min_dist]. *)

type t = {
  name : string;
  dim : int;
  norm : Geometry.Torus.norm;
      (** the norm [prob]'s [dist] argument is measured in; samplers must
          compute pair distances with it.  L∞ cell-separation lower bounds
          remain valid for every supported norm (L∞ <= L2 <= L1). *)
  prob : wu:float -> wv:float -> dist:float -> float;
  prob_packed : (Geometry.Torus.Packed.t -> float array -> int -> int -> float) option;
      (** When present, [mk packed weights] resolves to a fused trial
          kernel [f u v] equal bit-for-bit to
          [prob ~wu:weights.(u) ~wv:weights.(v)
                ~dist:(Packed.dist_between_fn packed norm u v)]
          but computed in one straight line of float arithmetic — no
          closure crossings, so a candidate-pair evaluation allocates
          only its boxed result.  Samplers should prefer it and fall
          back to [prob] when [None]. *)
  upper : wu_ub:float -> wv_ub:float -> min_dist:float -> float;
  saturation_volume : wu_ub:float -> wv_ub:float -> float;
  weight_cap : float;  (** [infinity] when no cap is needed *)
}

val girg : Params.t -> t
(** The GIRG kernel [min(1, (c q)^alpha)], threshold variant for
    [alpha = Infinite] ([1] iff [c q >= 1]). *)

val girg_prob : Params.t -> wu:float -> wv:float -> dist:float -> float
(** Direct access to the GIRG connection probability (used by objectives and
    by tests). *)
