(** Persistence for complete GIRG instances (parameters, weights, positions,
    edges), so that expensive samples can be routed on repeatedly or shared
    with external tooling.

    Two codecs share one loader:

    - {b v1 text} ({!save}): a ["# smallworld-girg"] header carrying the
      parameters, one ["v w x_1 .. x_d"] line per vertex, an ["edges m"]
      separator, then one ["u v"] line per edge — human-inspectable, kept
      for debugging.
    - {b v2 binary} ({!save_binary}): magic ["SWGIRGB1"], endian tag,
      parameter block, then packed little-endian sections (weights and
      positions as f64, CSR offsets/targets as i64, all 8-byte aligned).
      Loads without any text parsing, and the CSR sections can be
      memory-mapped ({!load_mmap}).

    {!load} auto-detects the format by the first byte ([#] introduces the
    text header). *)

val save : path:string -> Instance.t -> unit

val save_binary : path:string -> Instance.t -> unit
(** Writes the v2 binary snapshot.  Positions are written from the packed
    coordinate buffer, CSR arrays straight from the graph — values
    round-trip bit-exactly, as in the text format. *)

val binary_header_bytes : int
(** Byte offset of the weights section in a v2 snapshot (fixed header plus
    alignment padding). *)

val load : path:string -> (Instance.t, string) result
(** [Error] with a diagnostic on malformed or unreadable files.  Loading
    reconstructs exactly the saved weights/positions/edges (text floats
    round-trip through ["%h"]; binary sections are bit copies).  Both
    formats are validated structurally — truncated files, bad magic,
    endianness mismatches, and counts that disagree with the file size or
    exceed array limits all yield [Error], never a crash. *)

val load_mmap : path:string -> (Instance.t, string) result
(** Binary snapshots only.  Weights and positions are materialised on the
    heap, but the CSR offsets/targets sections are [Unix.map_file]'d
    read-only and traversed zero-copy: the graph pages in lazily and stays
    out of the OCaml heap, so peak RSS stays well below {!load} for large
    instances.  The mapping lives as long as the returned graph's arrays;
    the snapshot file must not be modified while the instance is in use. *)
