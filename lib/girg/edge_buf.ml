type t = { mutable data : int array; mutable len : int (* in ints, 2 per edge *) }

(* Largest usable backing length, kept even so it always holds whole edges. *)
let max_len = Sys.max_array_length land lnot 1

let create ?(capacity = 1024) () =
  if capacity < 0 || capacity > max_len / 2 then
    invalid_arg "Edge_buf.create: capacity out of range";
  { data = Array.make (max 2 (2 * capacity)) 0; len = 0 }

(* Doubling growth, saturating at [max_len] instead of wrapping past
   [max_int]: [2 * cap] on a near-maximal capacity would overflow to a
   negative length and crash [Array.make] with a confusing error. *)
let grow_to t need =
  if need > max_len then invalid_arg "Edge_buf: buffer would exceed Sys.max_array_length";
  let cap = ref (max 2 (Array.length t.data)) in
  while !cap < need do
    cap := if !cap > max_len / 2 then max_len else 2 * !cap
  done;
  let bigger = Array.make !cap 0 in
  Array.blit t.data 0 bigger 0 t.len;
  t.data <- bigger

let push t u v =
  if t.len + 2 > Array.length t.data then grow_to t (t.len + 2);
  t.data.(t.len) <- u;
  t.data.(t.len + 1) <- v;
  t.len <- t.len + 2

let length t = t.len / 2

(* Bulk move for merging per-chunk buffers in canonical order. *)
let append dst src =
  if src.len > 0 then begin
    let need = dst.len + src.len in
    if need > Array.length dst.data then grow_to dst need;
    Array.blit src.data 0 dst.data dst.len src.len;
    dst.len <- need
  end

let to_array t = Array.init (length t) (fun i -> (t.data.(2 * i), t.data.((2 * i) + 1)))

(* Flat view for the CSR fast path: no per-edge tuple materialisation. *)
let flat t = t.data
let flat_len t = t.len

let iter t f =
  let d = t.data in
  let i = ref 0 in
  while !i < t.len do
    f d.(!i) d.(!i + 1);
    i := !i + 2
  done
