type t = { mutable data : int array; mutable len : int (* in ints, 2 per edge *) }

let create ?(capacity = 1024) () = { data = Array.make (max 2 (2 * capacity)) 0; len = 0 }

let push t u v =
  if t.len + 2 > Array.length t.data then begin
    let bigger = Array.make (2 * Array.length t.data) 0 in
    Array.blit t.data 0 bigger 0 t.len;
    t.data <- bigger
  end;
  t.data.(t.len) <- u;
  t.data.(t.len + 1) <- v;
  t.len <- t.len + 2

let length t = t.len / 2

(* Bulk move for merging per-chunk buffers in canonical order. *)
let append dst src =
  if src.len > 0 then begin
    let need = dst.len + src.len in
    if need > Array.length dst.data then begin
      let cap = ref (max 2 (Array.length dst.data)) in
      while !cap < need do
        cap := 2 * !cap
      done;
      let bigger = Array.make !cap 0 in
      Array.blit dst.data 0 bigger 0 dst.len;
      dst.data <- bigger
    end;
    Array.blit src.data 0 dst.data dst.len src.len;
    dst.len <- need
  end

let to_array t = Array.init (length t) (fun i -> (t.data.(2 * i), t.data.((2 * i) + 1)))

(* Flat view for the CSR fast path: no per-edge tuple materialisation. *)
let flat t = t.data
let flat_len t = t.len

let iter t f =
  let d = t.data in
  let i = ref 0 in
  while !i < t.len do
    f d.(!i) d.(!i + 1);
    i := !i + 2
  done
