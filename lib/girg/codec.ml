(* Little-endian binary primitives shared by the spill and snapshot formats.
   Reads raise [Corrupt] with a diagnostic; format entry points catch it at
   the API boundary and return [Error] (same discipline as the wire codec's
   frame validation in PR 8). *)

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

(* The endianness/width sentinel: a reader on a platform whose native int
   layout disagrees with the file sees a mangled sentinel and refuses early
   instead of mis-decoding every word after it. *)
let endian_tag = 0x01020304

let scratch = 8

let write_i64 oc x =
  let b = Bytes.create scratch in
  Bytes.set_int64_le b 0 (Int64.of_int x);
  Out_channel.output oc b 0 8

let write_i32 oc x =
  if x < Int32.to_int Int32.min_int || x > Int32.to_int Int32.max_int then
    invalid_arg (Printf.sprintf "Codec.write_i32: %d out of range" x);
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int x);
  Out_channel.output oc b 0 4

let write_u8 oc x =
  if x < 0 || x > 0xff then invalid_arg "Codec.write_u8: out of range";
  Out_channel.output_byte oc x

let write_f64 oc x =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.bits_of_float x);
  Out_channel.output oc b 0 8

let write_magic oc magic = Out_channel.output_string oc magic

let read_exact ic len what =
  match really_input_string ic len with
  | s -> s
  | exception End_of_file -> corrupt "truncated file: expected %d bytes of %s" len what

let read_i64 ic what =
  let s = read_exact ic 8 what in
  let v = String.get_int64_le s 0 in
  (* Values are produced from OCaml ints, so a word outside the native int
     range marks corruption, not a big count. *)
  if Int64.compare v (Int64.of_int max_int) > 0 || Int64.compare v (Int64.of_int min_int) < 0
  then corrupt "%s = %Ld does not fit a native int" what v
  else Int64.to_int v

let read_i32 ic what = Int32.to_int (String.get_int32_le (read_exact ic 4 what) 0)

let read_u8 ic what =
  match In_channel.input_byte ic with
  | Some b -> b
  | None -> corrupt "truncated file: expected 1 byte of %s" what

let read_f64 ic what = Int64.float_of_bits (String.get_int64_le (read_exact ic 8 what) 0)

let read_magic ic expected =
  let got = read_exact ic (String.length expected) "magic" in
  if not (String.equal got expected) then
    corrupt "bad magic: expected %S, got %S" expected got

let check_endian_tag ic =
  let tag = read_i32 ic "endian tag" in
  if tag <> endian_tag then corrupt "endianness mismatch: tag %#x, expected %#x" tag endian_tag

(* ---- bulk float/int sections, staged through one scratch buffer ---- *)

let chunk_floats = 8192

let write_f64_array oc (a : float array) =
  let b = Bytes.create (8 * chunk_floats) in
  let n = Array.length a in
  let i = ref 0 in
  while !i < n do
    let k = min chunk_floats (n - !i) in
    for j = 0 to k - 1 do
      Bytes.set_int64_le b (8 * j) (Int64.bits_of_float a.(!i + j))
    done;
    Out_channel.output oc b 0 (8 * k);
    i := !i + k
  done

let read_f64_array ic n what =
  if n < 0 || n > Sys.max_array_length then corrupt "%s: bad length %d" what n;
  let a = Array.make (max 1 n) 0.0 in
  let b = Bytes.create (8 * chunk_floats) in
  let i = ref 0 in
  (try
     while !i < n do
       let k = min chunk_floats (n - !i) in
       really_input ic b 0 (8 * k);
       for j = 0 to k - 1 do
         a.(!i + j) <- Int64.float_of_bits (Bytes.get_int64_le b (8 * j))
       done;
       i := !i + k
     done
   with End_of_file -> corrupt "truncated file while reading %s (%d of %d values)" what !i n);
  if n = 0 then [||] else a

(* Edge sections: interleaved endpoints as int32 LE pairs (vertex ids stay
   well under 2^31 at any target scale; halving the word size halves spill
   I/O).  The writer validates the range so the reader can trust it. *)

let chunk_ints = 16384

let write_edges_i32 oc (flat : int array) ~len =
  let b = Bytes.create (4 * chunk_ints) in
  let i = ref 0 in
  while !i < len do
    let k = min chunk_ints (len - !i) in
    for j = 0 to k - 1 do
      let x = flat.(!i + j) in
      if x < 0 || x > 0x3fffffff then
        invalid_arg (Printf.sprintf "Codec.write_edges_i32: endpoint %d out of range" x);
      Bytes.set_int32_le b (4 * j) (Int32.of_int x)
    done;
    Out_channel.output oc b 0 (4 * k);
    i := !i + k
  done

let read_edges_i32 ic buf ~edges ~max_vertex =
  let b = Bytes.create (4 * chunk_ints) in
  let remaining = ref (2 * edges) in
  let u = ref (-1) in
  (try
     while !remaining > 0 do
       let k = min chunk_ints !remaining in
       really_input ic b 0 (4 * k);
       for j = 0 to k - 1 do
         let x = Int32.to_int (Bytes.get_int32_le b (4 * j)) in
         if x < 0 || x >= max_vertex then
           corrupt "edge endpoint %d out of range [0, %d)" x max_vertex;
         if !u < 0 then u := x
         else begin
           Edge_buf.push buf !u x;
           u := -1
         end
       done;
       remaining := !remaining - k
     done
   with End_of_file -> corrupt "truncated edge section (%d halves missing)" !remaining)

(* ---- parameter block, shared by the spill and snapshot headers ---- *)

let norm_code = function Geometry.Torus.Linf -> 0 | Geometry.Torus.L2 -> 1 | Geometry.Torus.L1 -> 2

let norm_of_code = function
  | 0 -> Geometry.Torus.Linf
  | 1 -> Geometry.Torus.L2
  | 2 -> Geometry.Torus.L1
  | c -> corrupt "unknown norm code %d" c

let params_block_size = 8 + 4 + 8 + 8 + (1 + 8) + 8 + 1 + 1

let write_params oc (p : Params.t) =
  write_i64 oc p.Params.n;
  write_i32 oc p.Params.dim;
  write_f64 oc p.Params.beta;
  write_f64 oc p.Params.w_min;
  (match p.Params.alpha with
  | Params.Infinite ->
      write_u8 oc 0;
      write_f64 oc 0.0
  | Params.Finite a ->
      write_u8 oc 1;
      write_f64 oc a);
  write_f64 oc p.Params.c;
  write_u8 oc (norm_code p.Params.norm);
  write_u8 oc (if p.Params.poisson_count then 1 else 0)

let read_params ic =
  let n = read_i64 ic "params.n" in
  let dim = read_i32 ic "params.dim" in
  let beta = read_f64 ic "params.beta" in
  let w_min = read_f64 ic "params.w_min" in
  let alpha_kind = read_u8 ic "params.alpha kind" in
  let alpha_val = read_f64 ic "params.alpha" in
  let alpha =
    match alpha_kind with
    | 0 -> Params.Infinite
    | 1 -> Params.Finite alpha_val
    | k -> corrupt "unknown alpha kind %d" k
  in
  let c = read_f64 ic "params.c" in
  let norm = norm_of_code (read_u8 ic "params.norm") in
  let poisson =
    match read_u8 ic "params.poisson" with
    | 0 -> false
    | 1 -> true
    | b -> corrupt "bad poisson flag %d" b
  in
  match Params.validate { Params.n; dim; beta; w_min; alpha; c; norm; poisson_count = poisson } with
  | Ok p -> p
  | Error e -> corrupt "invalid parameters: %s" e

(* ---- int64 sections staged through Bigarrays (CSR arrays) ---- *)

type int_ba = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

let chunk_words = 8192

let write_int_ba oc (a : int_ba) =
  let b = Bytes.create (8 * chunk_words) in
  let n = Bigarray.Array1.dim a in
  let i = ref 0 in
  while !i < n do
    let k = min chunk_words (n - !i) in
    for j = 0 to k - 1 do
      Bytes.set_int64_le b (8 * j) (Int64.of_int a.{!i + j})
    done;
    Out_channel.output oc b 0 (8 * k);
    i := !i + k
  done

let read_int_ba ic n what =
  if n < 0 then corrupt "%s: negative length %d" what n;
  let a = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n in
  let b = Bytes.create (8 * chunk_words) in
  let i = ref 0 in
  (try
     while !i < n do
       let k = min chunk_words (n - !i) in
       really_input ic b 0 (8 * k);
       for j = 0 to k - 1 do
         a.{!i + j} <- Int64.to_int (Bytes.get_int64_le b (8 * j))
       done;
       i := !i + k
     done
   with End_of_file -> corrupt "truncated file while reading %s (%d of %d words)" what !i n);
  a
