(** Expected-near-linear GIRG edge sampler.

    The sampler follows the hierarchical-grid scheme of Bringmann, Keusch and
    Lengler (and the ESA'19 implementation by Bläsius et al.): vertices are
    bucketed into geometric *weight layers*; for each pair of layers the grid
    level whose cell volume matches the layers' connection scale (the
    kernel's saturation volume) is the pair's *target level*.

    A recursion over Morton-cell pairs starting at the root handles each
    vertex pair exactly once per layer pair:

    - {b type I}: at a layer pair's target level, all vertex pairs lying in
      equal or neighbouring cells are tested exhaustively with their exact
      probability;
    - {b type II}: a cell pair that first becomes non-adjacent at some level
      is processed immediately for every layer pair with a deeper target:
      candidate pairs are enumerated by geometric skip-sampling under the
      kernel's [upper] envelope and accepted with ratio [prob/upper].

    Vertices with weight at or above [kernel.weight_cap] (only finite for
    hyperbolic kernels) are excluded from the grid and tested exhaustively
    against every other vertex.

    {b Parallelism and determinism.}  The recursion is first walked without
    consuming randomness, recording a flat stream of independent cell-pair
    tasks; tasks are then sampled on the given pool (the shared
    {!Parallel.Global} pool when [?pool] is omitted), each under its own
    RNG substream derived by SplitMix64 from (one draw of [rng], cell
    codes, level, task kind).  Per-chunk edge buffers are concatenated in
    task order, so for a fixed seed the emitted edge array — not just the
    edge set — is bit-identical for every job count, and the caller's
    [rng] advances by exactly one draw regardless.

    The output is distributed exactly as the naive sampler's (each unordered
    pair is connected independently with its kernel probability), at expected
    cost roughly O(n + m) up to logarithmic factors. *)

type stats = {
  type1_pairs : int;  (** vertex pairs tested exhaustively *)
  type2_trials : int;  (** skip-sampling candidates examined *)
  cells_visited : int;  (** neighbour cell pairs expanded by the recursion *)
}

val sample_edges_buf_stats :
  ?pool:Parallel.Pool.t ->
  ?shard:int * int ->
  rng:Prng.Rng.t ->
  kernel:Kernel.t ->
  weights:float array ->
  positions:Geometry.Torus.point array ->
  unit ->
  Edge_buf.t * stats
(** The primary entry point: the sampled edges stay in their flat interleaved
    buffer, which {!Sparse_graph.Graph.of_flat_halves} consumes directly —
    no boxed [(u, v) array] is materialised on the generation path.

    [?shard:(i, s)] (default [(0, 1)]) restricts sampling to shard [i] of
    [s]: the contiguous band [i*nt/s, (i+1)*nt/s) of the canonical task
    enumeration (a run of cell pairs in recursion order).  The cheap
    enumeration phase still runs in full — it consumes no randomness — so
    independent processes given the same inputs and distinct shard indices
    partition the work exactly: concatenating their edge buffers in shard
    order is byte-identical to the [(0, 1)] output, for {e any} combination
    of shard count and job count.  Note [stats.cells_visited] counts the
    full enumeration in every shard (it is not partitioned), while
    [type1_pairs]/[type2_trials] cover only the shard's own tasks.
    @raise Invalid_argument unless [0 <= i < s]. *)

val sample_edges :
  ?pool:Parallel.Pool.t ->
  rng:Prng.Rng.t ->
  kernel:Kernel.t ->
  weights:float array ->
  positions:Geometry.Torus.point array ->
  unit ->
  (int * int) array
(** Tuple-array convenience wrapper over {!sample_edges_buf_stats}. *)

val sample_edges_stats :
  ?pool:Parallel.Pool.t ->
  rng:Prng.Rng.t ->
  kernel:Kernel.t ->
  weights:float array ->
  positions:Geometry.Torus.point array ->
  unit ->
  (int * int) array * stats
(** Tuple-array convenience wrapper over {!sample_edges_buf_stats}. *)
