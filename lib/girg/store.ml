let alpha_to_field = function
  | Params.Infinite -> "inf"
  | Params.Finite a -> Printf.sprintf "%h" a

let alpha_of_field = function
  | "inf" -> Some Params.Infinite
  | s -> Option.map (fun a -> Params.Finite a) (float_of_string_opt s)

let save ~path (inst : Instance.t) =
  Out_channel.with_open_text path (fun oc ->
      let p = inst.params in
      let count = Array.length inst.weights in
      Printf.fprintf oc "# smallworld-girg n=%d dim=%d beta=%h w_min=%h alpha=%s c=%h norm=%s poisson=%b count=%d\n"
        p.Params.n p.Params.dim p.Params.beta p.Params.w_min (alpha_to_field p.Params.alpha)
        p.Params.c (Params.norm_to_string p.Params.norm) p.Params.poisson_count count;
      for v = 0 to count - 1 do
        Printf.fprintf oc "%d %h" v inst.weights.(v);
        Array.iter (fun x -> Printf.fprintf oc " %h" x) inst.positions.(v);
        Out_channel.output_char oc '\n'
      done;
      Printf.fprintf oc "edges %d\n" (Sparse_graph.Graph.m inst.graph);
      Sparse_graph.Graph.iter_edges inst.graph (fun u v -> Printf.fprintf oc "%d %d\n" u v))

let parse_header line =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  match String.split_on_char ' ' (String.trim line) with
  | "#" :: "smallworld-girg" :: fields -> begin
      let kv = Hashtbl.create 8 in
      List.iter
        (fun field ->
          match String.index_opt field '=' with
          | Some i ->
              Hashtbl.replace kv
                (String.sub field 0 i)
                (String.sub field (i + 1) (String.length field - i - 1))
          | None -> ())
        fields;
      let get key = Hashtbl.find_opt kv key in
      let norm =
        match get "norm" with
        | None -> Some Geometry.Torus.Linf (* older files predate the field *)
        | Some s -> Params.norm_of_string s
      in
      match
        ( Option.bind (get "n") int_of_string_opt,
          Option.bind (get "dim") int_of_string_opt,
          Option.bind (get "beta") float_of_string_opt,
          Option.bind (get "w_min") float_of_string_opt,
          Option.bind (get "alpha") alpha_of_field,
          (Option.bind (get "c") float_of_string_opt, norm),
          Option.bind (get "poisson") bool_of_string_opt,
          Option.bind (get "count") int_of_string_opt )
      with
      | Some n, Some dim, Some beta, Some w_min, Some alpha, (Some c, Some norm), Some poisson, Some count
        -> begin
          match
            Params.validate
              { Params.n; dim; beta; w_min; alpha; c; norm; poisson_count = poisson }
          with
          | Ok params -> Ok (params, count)
          | Error e -> fail "invalid parameters in header: %s" e
        end
      | _ -> fail "missing or malformed header fields"
    end
  | _ -> fail "not a smallworld-girg file"

let load ~path =
  let parse ic =
    let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
    match In_channel.input_line ic with
    | None -> Error "empty file"
    | Some header -> begin
        match parse_header header with
        | Error e -> Error e
        | Ok (params, count) -> begin
            let weights = Array.make count 0.0 in
            let positions = Array.make count [||] in
            let error = ref None in
            (try
               for v = 0 to count - 1 do
                 match In_channel.input_line ic with
                 | None -> raise Exit
                 | Some line -> begin
                     match String.split_on_char ' ' (String.trim line) with
                     | id_str :: w_str :: coord_strs
                       when List.length coord_strs = params.Params.dim -> begin
                         match
                           ( int_of_string_opt id_str,
                             float_of_string_opt w_str,
                             List.map float_of_string_opt coord_strs )
                         with
                         | Some id, Some w, coords
                           when id = v && List.for_all Option.is_some coords ->
                             weights.(v) <- w;
                             positions.(v) <-
                               Array.of_list (List.map Option.get coords)
                         | _ ->
                             error := Some (Printf.sprintf "bad vertex line %d" v);
                             raise Exit
                       end
                     | _ ->
                         error := Some (Printf.sprintf "bad vertex line %d" v);
                         raise Exit
                   end
               done
             with Exit -> if !error = None then error := Some "truncated vertex section");
            match !error with
            | Some e -> Error e
            | None -> begin
                match In_channel.input_line ic with
                | Some sep -> begin
                    match String.split_on_char ' ' (String.trim sep) with
                    | [ "edges"; m_str ] -> begin
                        match int_of_string_opt m_str with
                        | Some m -> begin
                            let buf = Edge_buf.create ~capacity:(max 1 m) () in
                            let ok = ref true in
                            (try
                               for _ = 1 to m do
                                 match In_channel.input_line ic with
                                 | None -> raise Exit
                                 | Some line -> begin
                                     match
                                       String.split_on_char ' ' (String.trim line)
                                     with
                                     | [ u_str; v_str ] -> begin
                                         match
                                           (int_of_string_opt u_str, int_of_string_opt v_str)
                                         with
                                         | Some u, Some v
                                           when u >= 0 && u < count && v >= 0 && v < count ->
                                             Edge_buf.push buf u v
                                         | _ -> raise Exit
                                       end
                                     | _ -> raise Exit
                                   end
                               done
                             with Exit -> ok := false);
                            if not !ok then Error "truncated or malformed edge section"
                            else
                              Ok
                                {
                                  Instance.params;
                                  weights;
                                  positions;
                                  packed =
                                    Geometry.Torus.Packed.of_points
                                      ~dim:params.Params.dim positions;
                                  graph =
                                    Sparse_graph.Graph.of_flat_halves ~n:count
                                      ~len:(Edge_buf.flat_len buf) (Edge_buf.flat buf);
                                }
                          end
                        | None -> fail "bad edge count %s" m_str
                      end
                    | _ -> fail "expected 'edges m' separator, got %s" sep
                  end
                | None -> Error "missing edge section"
              end
          end
      end
  in
  match In_channel.with_open_text path parse with
  | result -> result
  | exception Sys_error msg -> Error msg
