let alpha_to_field = function
  | Params.Infinite -> "inf"
  | Params.Finite a -> Printf.sprintf "%h" a

let alpha_of_field = function
  | "inf" -> Some Params.Infinite
  | s -> Option.map (fun a -> Params.Finite a) (float_of_string_opt s)

let save ~path (inst : Instance.t) =
  Out_channel.with_open_text path (fun oc ->
      let p = inst.params in
      let count = Array.length inst.weights in
      Printf.fprintf oc "# smallworld-girg n=%d dim=%d beta=%h w_min=%h alpha=%s c=%h norm=%s poisson=%b count=%d\n"
        p.Params.n p.Params.dim p.Params.beta p.Params.w_min (alpha_to_field p.Params.alpha)
        p.Params.c (Params.norm_to_string p.Params.norm) p.Params.poisson_count count;
      for v = 0 to count - 1 do
        Printf.fprintf oc "%d %h" v inst.weights.(v);
        Array.iter (fun x -> Printf.fprintf oc " %h" x) inst.positions.(v);
        Out_channel.output_char oc '\n'
      done;
      Printf.fprintf oc "edges %d\n" (Sparse_graph.Graph.m inst.graph);
      Sparse_graph.Graph.iter_edges inst.graph (fun u v -> Printf.fprintf oc "%d %d\n" u v))

let parse_header line =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  match String.split_on_char ' ' (String.trim line) with
  | "#" :: "smallworld-girg" :: fields -> begin
      let kv = Hashtbl.create 8 in
      List.iter
        (fun field ->
          match String.index_opt field '=' with
          | Some i ->
              Hashtbl.replace kv
                (String.sub field 0 i)
                (String.sub field (i + 1) (String.length field - i - 1))
          | None -> ())
        fields;
      let get key = Hashtbl.find_opt kv key in
      let norm =
        match get "norm" with
        | None -> Some Geometry.Torus.Linf (* older files predate the field *)
        | Some s -> Params.norm_of_string s
      in
      match
        ( Option.bind (get "n") int_of_string_opt,
          Option.bind (get "dim") int_of_string_opt,
          Option.bind (get "beta") float_of_string_opt,
          Option.bind (get "w_min") float_of_string_opt,
          Option.bind (get "alpha") alpha_of_field,
          (Option.bind (get "c") float_of_string_opt, norm),
          Option.bind (get "poisson") bool_of_string_opt,
          Option.bind (get "count") int_of_string_opt )
      with
      | Some n, Some dim, Some beta, Some w_min, Some alpha, (Some c, Some norm), Some poisson, Some count
        -> begin
          match
            Params.validate
              { Params.n; dim; beta; w_min; alpha; c; norm; poisson_count = poisson }
          with
          | Ok params -> Ok (params, count)
          | Error e -> fail "invalid parameters in header: %s" e
        end
      | _ -> fail "missing or malformed header fields"
    end
  | _ -> fail "not a smallworld-girg file"

(* Edge counts come from an untrusted header: cap them so the buffer
   allocation below cannot blow up with [Invalid_argument] from
   [Array.make] — a malformed file must yield [Error], never a crash. *)
let max_edge_count = (Sys.max_array_length / 2) - 1

let load_text ic =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  match In_channel.input_line ic with
  | None -> Error "empty file"
  | Some header -> begin
      match parse_header header with
      | Error e -> Error e
      | Ok (params, count) -> begin
          if count < 0 || count > Sys.max_array_length then
            fail "vertex count %d out of range" count
          else begin
            let weights = Array.make (max 1 count) 0.0 in
            let positions = Array.make (max 1 count) [||] in
            let weights = if count = 0 then [||] else weights in
            let positions = if count = 0 then [||] else positions in
            let error = ref None in
            (try
               for v = 0 to count - 1 do
                 match In_channel.input_line ic with
                 | None -> raise Exit
                 | Some line -> begin
                     match String.split_on_char ' ' (String.trim line) with
                     | id_str :: w_str :: coord_strs
                       when List.length coord_strs = params.Params.dim -> begin
                         match
                           ( int_of_string_opt id_str,
                             float_of_string_opt w_str,
                             List.map float_of_string_opt coord_strs )
                         with
                         | Some id, Some w, coords
                           when id = v && List.for_all Option.is_some coords ->
                             weights.(v) <- w;
                             positions.(v) <-
                               Array.of_list (List.map Option.get coords)
                         | _ ->
                             error := Some (Printf.sprintf "bad vertex line %d" v);
                             raise Exit
                       end
                     | _ ->
                         error := Some (Printf.sprintf "bad vertex line %d" v);
                         raise Exit
                   end
               done
             with Exit -> if !error = None then error := Some "truncated vertex section");
            match !error with
            | Some e -> Error e
            | None -> begin
                match In_channel.input_line ic with
                | Some sep -> begin
                    match String.split_on_char ' ' (String.trim sep) with
                    | [ "edges"; m_str ] -> begin
                        match int_of_string_opt m_str with
                        | Some m when m < 0 || m > max_edge_count ->
                            fail "edge count %d out of range" m
                        | Some m -> begin
                            let buf = Edge_buf.create ~capacity:(max 1 m) () in
                            let ok = ref true in
                            (try
                               for _ = 1 to m do
                                 match In_channel.input_line ic with
                                 | None -> raise Exit
                                 | Some line -> begin
                                     match
                                       String.split_on_char ' ' (String.trim line)
                                     with
                                     | [ u_str; v_str ] -> begin
                                         match
                                           (int_of_string_opt u_str, int_of_string_opt v_str)
                                         with
                                         | Some u, Some v
                                           when u >= 0 && u < count && v >= 0 && v < count ->
                                             Edge_buf.push buf u v
                                         | _ -> raise Exit
                                       end
                                     | _ -> raise Exit
                                   end
                               done
                             with Exit -> ok := false);
                            if not !ok then Error "truncated or malformed edge section"
                            else
                              Ok
                                {
                                  Instance.params;
                                  weights;
                                  positions;
                                  packed =
                                    Geometry.Torus.Packed.of_points
                                      ~dim:params.Params.dim positions;
                                  graph =
                                    Sparse_graph.Graph.of_flat_halves ~n:count
                                      ~len:(Edge_buf.flat_len buf) (Edge_buf.flat buf);
                                }
                          end
                        | None -> fail "bad edge count %s" m_str
                      end
                    | _ -> fail "expected 'edges m' separator, got %s" sep
                  end
                | None -> Error "missing edge section"
              end
          end
        end
    end

(* ------------------------------------------------------------------ *)
(* Binary snapshot (v2, auto-detected alongside the v1 text format).

   Layout, all integers little-endian, all sections 8-byte aligned:

     offset  size          field
     0       8             magic "SWGIRGB1"
     8       4             endian tag 0x01020304 (i32)
     12      38            parameter block (see Codec.write_params)
     50      8             count: realised vertex count (i64)
     58      8             m: undirected edge count (i64)
     66      6             zero padding (aligns the data sections)
     72      8*count       weights (f64)
     ..      8*count*dim   positions, dim-strided per vertex (f64)
     ..      8*(count+1)   CSR offsets (i64)
     ..      8*2m          CSR targets (i64)

   The CSR words are nonnegative OCaml ints, so on a little-endian 64-bit
   host the offsets/targets sections can be [Unix.map_file]'d as
   native-int Bigarrays and traversed zero-copy ([load_mmap]). *)

let binary_magic = "SWGIRGB1"
let binary_fixed_bytes = 8 + 4 + Codec.params_block_size + 8 + 8
let binary_pad = (8 - (binary_fixed_bytes mod 8)) mod 8
let binary_header_bytes = binary_fixed_bytes + binary_pad

let save_binary ~path (inst : Instance.t) =
  Out_channel.with_open_bin path (fun oc ->
      (* A mutated graph's base arrays do not describe the merged view;
         fold any live delta into a plain CSR before serialising. *)
      let g = Sparse_graph.Graph.compact inst.graph in
      let count = Array.length inst.weights in
      Codec.write_magic oc binary_magic;
      Codec.write_i32 oc Codec.endian_tag;
      Codec.write_params oc inst.params;
      Codec.write_i64 oc count;
      Codec.write_i64 oc (Sparse_graph.Graph.m g);
      for _ = 1 to binary_pad do
        Codec.write_u8 oc 0
      done;
      Codec.write_f64_array oc inst.weights;
      Codec.write_f64_array oc (Geometry.Torus.Packed.data inst.packed);
      Codec.write_int_ba oc (Sparse_graph.Graph.offsets_ba g);
      Codec.write_int_ba oc (Sparse_graph.Graph.targets_ba g))

(* Reads and fully validates the fixed part.  Returns (params, count, m);
   afterwards [ic] is positioned at the weights section. *)
let read_binary_header ic =
  Codec.read_magic ic binary_magic;
  Codec.check_endian_tag ic;
  let params = Codec.read_params ic in
  let count = Codec.read_i64 ic "count" in
  let m = Codec.read_i64 ic "m" in
  if count < 0 || count > Sys.max_array_length then
    Codec.corrupt "vertex count %d out of range" count;
  if m < 0 || m > max_edge_count then Codec.corrupt "edge count %d out of range" m;
  for _ = 1 to binary_pad do
    ignore (Codec.read_u8 ic "padding")
  done;
  (* Oversized/truncated rejection: the data sections' byte size must match
     the header's promise exactly, before anything is allocated from it. *)
  let dim = params.Params.dim in
  let expected =
    let ( + ) = Int64.add and ( * ) = Int64.mul in
    let i = Int64.of_int in
    (8L * i count) + (8L * i count * i dim) + (8L * (i count + 1L)) + (16L * i m)
  in
  let remaining = Int64.sub (In_channel.length ic) (In_channel.pos ic) in
  if Int64.compare remaining expected <> 0 then
    Codec.corrupt "data sections are %Ld bytes, header promises %Ld" remaining expected;
  (params, count, m)

let positions_of_flat ~count ~dim flat =
  Array.init count (fun v -> Array.sub flat (v * dim) dim)

let instance_of_sections ~params ~count weights positions offsets targets =
  match Sparse_graph.Graph.of_bigarrays ~n:count ~offsets ~targets () with
  | Error e -> Codec.corrupt "%s" e
  | Ok graph ->
      {
        Instance.params;
        weights;
        positions;
        packed = Geometry.Torus.Packed.of_points ~dim:params.Params.dim positions;
        graph;
      }

let load_binary ic =
  let params, count, m = read_binary_header ic in
  let dim = params.Params.dim in
  let weights = Codec.read_f64_array ic count "weights" in
  let flat_pos = Codec.read_f64_array ic (count * dim) "positions" in
  let positions = positions_of_flat ~count ~dim flat_pos in
  let offsets = Codec.read_int_ba ic (count + 1) "offsets" in
  let targets = Codec.read_int_ba ic (2 * m) "targets" in
  instance_of_sections ~params ~count weights positions offsets targets

let load ~path =
  let dispatch ic =
    match In_channel.input_char ic with
    | None -> Error "empty file"
    | Some first -> begin
        In_channel.seek ic 0L;
        if first = '#' then load_text ic
        else
          match load_binary ic with
          | inst -> Ok inst
          | exception Codec.Corrupt msg -> Error msg
      end
  in
  match In_channel.with_open_bin path dispatch with
  | result -> result
  | exception Sys_error msg -> Error msg

(* Binary-only load that maps the CSR sections instead of reading them:
   the graph pages in lazily from the file and stays off the OCaml heap.
   Weights and positions are still materialised (routing needs them in
   heap form); the CSR dominates the footprint at scale.  The mapping's
   lifetime is tied to the returned Bigarrays — the fd is closed before
   returning, and the kernel drops the mapping when the graph's arrays are
   collected. *)
let load_mmap ~path =
  let header ic =
    let params, count, m = read_binary_header ic in
    let dim = params.Params.dim in
    let weights = Codec.read_f64_array ic count "weights" in
    let flat_pos = Codec.read_f64_array ic (count * dim) "positions" in
    (params, count, m, weights, positions_of_flat ~count ~dim flat_pos, In_channel.pos ic)
  in
  match In_channel.with_open_bin path header with
  | exception Sys_error msg -> Error msg
  | exception Codec.Corrupt msg -> Error msg
  | params, count, m, weights, positions, csr_pos -> begin
      let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
      let map ~pos len =
        Bigarray.array1_of_genarray
          (Unix.map_file fd ~pos Bigarray.int Bigarray.c_layout false [| len |])
      in
      match
        let offsets = map ~pos:csr_pos (count + 1) in
        let targets =
          map ~pos:(Int64.add csr_pos (Int64.of_int (8 * (count + 1)))) (2 * m)
        in
        (offsets, targets)
      with
      | exception e ->
          Unix.close fd;
          Error (Printexc.to_string e)
      | offsets, targets -> begin
          Unix.close fd;
          (* No content validation: the full scan would fault the whole
             mapping resident, which is exactly what load_mmap exists to
             avoid.  Section sizes were already checked against the
             header, and Bigarray bounds checks contain any residual
             corruption. *)
          match
            Sparse_graph.Graph.of_bigarrays ~validate:false ~n:count ~offsets ~targets ()
          with
          | Error e -> Error e
          | Ok graph ->
              Ok
                {
                  Instance.params;
                  weights;
                  positions;
                  packed =
                    Geometry.Torus.Packed.of_points ~dim:params.Params.dim positions;
                  graph;
                }
        end
    end
