(** Sharded out-of-core GIRG generation.

    A shard process re-derives the instance's vertex data from
    [(seed, params)] alone, samples shard [i] of [S] of the cell sampler's
    deterministic task enumeration (see {!Cell.sample_edges_buf_stats}),
    and spills its edges to a binary file.  {!merge} validates the spill
    set and concatenates the edge streams in shard order — the result is
    byte-identical to single-process generation with the cell sampler, for
    any combination of shard count and job count.

    Spill layout (little-endian): magic ["SWGSPIL1"], endian tag (i32
    [0x01020304]), seed (i64), shards (i32), shard (i32), vertex count
    (i64), parameter block ({!Codec.write_params}), edge count (i64), then
    [edge count] pairs of (u, v) as int32 — in sampling order.  Readers
    reject bad magic, endianness mismatches, out-of-range counts, and any
    file whose edge section does not match the promised byte size. *)

type header = {
  params : Params.t;
  seed : int;
  shards : int;
  shard : int;  (** this spill's index, in [0, shards) *)
  count : int;  (** realised vertex count (identical across the set) *)
  edges : int;  (** edges in this spill *)
}

val header_bytes : int
(** Encoded size of a spill header (edge section follows immediately). *)

val sample :
  ?pool:Parallel.Pool.t ->
  seed:int ->
  shards:int ->
  shard:int ->
  Params.t ->
  Edge_buf.t * int
(** [sample ~seed ~shards ~shard params] re-derives the vertex data from
    the seed and samples just this shard's task band; returns the edge
    buffer and the realised vertex count.
    @raise Invalid_argument unless [0 <= shard < shards]. *)

val generate_spill :
  ?pool:Parallel.Pool.t ->
  path:string ->
  seed:int ->
  shards:int ->
  shard:int ->
  Params.t ->
  header
(** {!sample} followed by an atomic single-file spill write to [path]. *)

val write_spill :
  path:string ->
  seed:int ->
  shards:int ->
  shard:int ->
  params:Params.t ->
  count:int ->
  Edge_buf.t ->
  unit

val read_header : path:string -> (header, string) result
(** Reads and validates a spill header without touching the edge section
    (beyond checking its byte size against the header's promise). *)

val read_spill : path:string -> (header * Edge_buf.t, string) result

val merge_edges : paths:string list -> (header * Edge_buf.t, string) result
(** Validates the spill set (one spill per shard index [0..S-1], all
    stamped with the same seed/params/count) and concatenates the edge
    streams in shard order.  The returned header is shard 0's. *)

val merge : paths:string list -> unit -> (Instance.t, string) result
(** {!merge_edges}, then re-derives weights/positions from the recorded
    seed and builds the CSR graph — a complete instance equal to what
    [Instance.generate ~sampler:Use_cell] yields for the same seed. *)
