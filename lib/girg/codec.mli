(** Little-endian binary primitives for the spill and snapshot formats.

    All multi-byte values are little-endian.  Integers are written as int64
    (or int32 where noted) from native OCaml [int]s; floats as IEEE-754
    binary64 bit patterns, so values round-trip exactly.  Readers raise
    {!Corrupt} on truncation, range violations, or sentinel mismatches —
    format entry points catch it and surface [Error]. *)

exception Corrupt of string

val corrupt : ('a, unit, string, 'b) format4 -> 'a
(** [corrupt fmt ...] raises {!Corrupt} with the formatted diagnostic. *)

val endian_tag : int
(** Sentinel word written after each magic ([0x01020304] as int32 LE); a
    reader that decodes anything else refuses the file early. *)

val write_i64 : Out_channel.t -> int -> unit
val write_i32 : Out_channel.t -> int -> unit
val write_u8 : Out_channel.t -> int -> unit
val write_f64 : Out_channel.t -> float -> unit
val write_magic : Out_channel.t -> string -> unit
val write_f64_array : Out_channel.t -> float array -> unit

val write_edges_i32 : Out_channel.t -> int array -> len:int -> unit
(** First [len] entries of an interleaved half-edge array as int32 LE.
    @raise Invalid_argument if an entry exceeds the int32-safe range. *)

val read_i64 : In_channel.t -> string -> int
(** [read_i64 ic what] reads one int64 LE word; [what] names the field in
    diagnostics.  Words outside the native [int] range are {!Corrupt}. *)

val read_i32 : In_channel.t -> string -> int
val read_u8 : In_channel.t -> string -> int
val read_f64 : In_channel.t -> string -> float
val read_magic : In_channel.t -> string -> unit
val check_endian_tag : In_channel.t -> unit
val read_f64_array : In_channel.t -> int -> string -> float array

val read_edges_i32 : In_channel.t -> Edge_buf.t -> edges:int -> max_vertex:int -> unit
(** Reads [edges] int32-LE endpoint pairs onto the buffer, validating each
    endpoint against [max_vertex]. *)

val params_block_size : int
(** Encoded byte size of a parameter block (fixed). *)

val write_params : Out_channel.t -> Params.t -> unit
(** Fixed-size parameter block: n i64, dim i32, beta f64, w_min f64, alpha
    (kind u8 + value f64), c f64, norm u8, poisson u8. *)

val read_params : In_channel.t -> Params.t
(** Decodes and {e validates} a parameter block ({!Corrupt} on failure). *)

type int_ba = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

val write_int_ba : Out_channel.t -> int_ba -> unit
(** Each element as one int64 LE word. *)

val read_int_ba : In_channel.t -> int -> string -> int_ba
(** [read_int_ba ic n what] reads [n] int64 LE words into a fresh Bigarray.
    Words outside the native int range decode truncated — callers must
    validate the resulting values (e.g. {!Sparse_graph.Graph.of_bigarrays}
    range-checks every entry). *)
