(* Live-graph mutations over a generated instance.

   The geometry (weights, positions, kernel parameters) of an instance is
   immutable; mutation changes only the edge set, through the
   copy-on-write delta of [Sparse_graph.Graph].  [Resample] re-draws a
   vertex's edges from the instance's own connection kernel with a
   substream keyed on (seed, epoch, vertex, neighbour), so the same
   mutation script against the same (seed, params) yields bit-identical
   graphs at every epoch — independent of evaluation order, job count,
   or heap/mmap backing. *)

module G = Sparse_graph.Graph

type op =
  | Leave of int
  | Rejoin of int
  | Drop of int * int
  | Resample of int

let op_to_string = function
  | Leave v -> Printf.sprintf "leave:%d" v
  | Rejoin v -> Printf.sprintf "rejoin:%d" v
  | Drop (u, v) -> Printf.sprintf "drop:%d:%d" u v
  | Resample v -> Printf.sprintf "resample:%d" v

let op_of_string s =
  let int_of what tok =
    match int_of_string_opt tok with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "bad %s %S in mutation %S" what tok s)
  in
  match String.split_on_char ':' s with
  | [ "leave"; v ] -> Result.map (fun v -> Leave v) (int_of "vertex" v)
  | [ "rejoin"; v ] -> Result.map (fun v -> Rejoin v) (int_of "vertex" v)
  | [ "drop"; u; v ] -> (
      match (int_of "endpoint" u, int_of "endpoint" v) with
      | Ok u, Ok v -> Ok (Drop (u, v))
      | (Error _ as e), _ | _, (Error _ as e) -> e)
  | [ "resample"; v ] -> Result.map (fun v -> Resample v) (int_of "vertex" v)
  | _ ->
      Error
        (Printf.sprintf
           "bad mutation %S (leave:V | rejoin:V | drop:U:V | resample:V)" s)

let ops_of_strings ss =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | s :: rest -> (
        match op_of_string s with
        | Ok op -> go (op :: acc) rest
        | Error _ as e -> e)
  in
  go [] ss

let validate ~n ops =
  let check what v =
    if v < 0 || v >= n then
      Error (Printf.sprintf "%s: vertex %d out of range [0, %d)" what v n)
    else Ok ()
  in
  let rec go = function
    | [] -> Ok ()
    | op :: rest -> (
        let r =
          match op with
          | Leave v -> check "leave" v
          | Rejoin v -> check "rejoin" v
          | Resample v -> check "resample" v
          | Drop (u, v) -> (
              if u = v then Error (Printf.sprintf "drop:%d:%d: self-loop" u v)
              else
                match check "drop" u with Ok () -> check "drop" v | e -> e)
        in
        match r with Ok () -> go rest | Error _ as e -> e)
  in
  go ops

(* One coin per ordered (epoch, v, u): re-sampling vertex [v] draws every
   live partner [u] in ascending order, each from its own keyed
   substream, so the draw for a pair never depends on how many other
   pairs were considered. *)
let resample_mutations ~base ~epoch (inst : Instance.t) g v =
  let n = G.n g in
  let drops =
    G.fold_neighbors g v ~init:[] ~f:(fun acc u -> G.Remove_edge (v, u) :: acc)
  in
  let adds = ref [] in
  for u = n - 1 downto 0 do
    if u <> v && G.live g u then begin
      let rng = Prng.Rng.of_mixed_triple ~base ~a:epoch ~b:v ~c:u in
      if Prng.Rng.unit_float rng < Instance.connection_prob inst v u then
        adds := G.Add_edge (v, u) :: !adds
    end
  done;
  List.rev_append drops !adds

let apply ~seed (inst : Instance.t) ops =
  let epoch = G.epoch inst.graph + 1 in
  let base = Prng.Rng.mix64 (Int64.of_int seed) in
  (* An empty script is still an epoch: apply a no-op batch first so the
     version always advances, then fold the ops. *)
  let graph0 = G.apply ~epoch inst.graph [] in
  let graph =
    List.fold_left
      (fun g op ->
        match op with
        | Leave v -> G.apply ~epoch g [ G.Remove_vertex v ]
        | Rejoin v -> G.apply ~epoch g [ G.Restore_vertex v ]
        | Drop (u, v) -> G.apply ~epoch g [ G.Remove_edge (u, v) ]
        | Resample v ->
            (* Re-sampling a departed vertex is a deterministic no-op;
               the caller decides whether to reject it upfront. *)
            if not (G.live g v) then g
            else G.apply ~epoch g (resample_mutations ~base ~epoch inst g v))
      graph0 ops
  in
  { inst with graph }
