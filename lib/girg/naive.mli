(** Reference edge sampler: test all O(n²) vertex pairs independently.

    This is the executable specification of the model — slow but obviously
    correct.  The cell sampler is property-tested against it. *)

val sample_edges_buf :
  rng:Prng.Rng.t ->
  kernel:Kernel.t ->
  weights:float array ->
  positions:Geometry.Torus.point array ->
  Edge_buf.t
(** Independent Bernoulli trial per unordered pair, probability given by the
    kernel at the pair's L∞ torus distance.  Edges stay in the flat buffer
    for {!Sparse_graph.Graph.of_flat_halves}. *)

val sample_edges :
  rng:Prng.Rng.t ->
  kernel:Kernel.t ->
  weights:float array ->
  positions:Geometry.Torus.point array ->
  (int * int) array
(** Tuple-array convenience wrapper over {!sample_edges_buf}. *)
