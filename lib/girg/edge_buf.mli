(** Growable buffer of undirected edges (amortised O(1) push). *)

type t

val create : ?capacity:int -> unit -> t

val push : t -> int -> int -> unit

val length : t -> int
(** Number of edges pushed. *)

val append : t -> t -> unit
(** [append dst src] pushes every edge of [src] onto [dst], in [src]'s
    push order.  [src] is unchanged. *)

val to_array : t -> (int * int) array
(** Fresh array of the pushed edges, in push order. *)
