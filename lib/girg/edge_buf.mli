(** Growable buffer of undirected edges (amortised O(1) push). *)

type t

val create : ?capacity:int -> unit -> t
(** [create ~capacity ()] pre-sizes the buffer for [capacity] edges.
    @raise Invalid_argument if [capacity] is negative or so large that the
    backing array would exceed [Sys.max_array_length] — callers reading a
    capacity from an untrusted header must validate it first.  Growth on
    [push]/[append] doubles the backing array, saturating at
    [Sys.max_array_length] rather than wrapping past [max_int]. *)

val push : t -> int -> int -> unit

val length : t -> int
(** Number of edges pushed. *)

val append : t -> t -> unit
(** [append dst src] pushes every edge of [src] onto [dst], in [src]'s
    push order.  [src] is unchanged. *)

val to_array : t -> (int * int) array
(** Fresh array of the pushed edges, in push order.  Cold paths only — hot
    consumers should use {!flat}/{!flat_len} and avoid the per-edge tuple
    boxes. *)

val flat : t -> int array
(** The backing buffer: endpoints interleaved as [u0; v0; u1; v1; ...].

    Aliasing contract: the returned array is the buffer's {e live} backing
    store, not a copy.  Only the first {!flat_len} entries are meaningful
    (the array is over-allocated).  Callers must not mutate it, and must
    not retain it across a subsequent {!push}/{!append} — growth replaces
    the backing array, after which the old reference is a stale snapshot
    that no longer reflects the buffer. *)

val flat_len : t -> int
(** Number of valid ints in {!flat} (twice {!length}). *)

val iter : t -> (int -> int -> unit) -> unit
(** [iter t f] applies [f u v] to every pushed edge, in push order,
    without materialising tuples. *)
