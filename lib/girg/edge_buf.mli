(** Growable buffer of undirected edges (amortised O(1) push). *)

type t

val create : ?capacity:int -> unit -> t

val push : t -> int -> int -> unit

val length : t -> int
(** Number of edges pushed. *)

val append : t -> t -> unit
(** [append dst src] pushes every edge of [src] onto [dst], in [src]'s
    push order.  [src] is unchanged. *)

val to_array : t -> (int * int) array
(** Fresh array of the pushed edges, in push order.  Cold paths only — hot
    consumers should use {!flat}/{!flat_len} and avoid the per-edge tuple
    boxes. *)

val flat : t -> int array
(** The backing buffer: endpoints interleaved as [u0; v0; u1; v1; ...].
    Only the first {!flat_len} entries are meaningful; treat as read-only
    (the buffer is reused and may be over-allocated). *)

val flat_len : t -> int
(** Number of valid ints in {!flat} (twice {!length}). *)

val iter : t -> (int -> int -> unit) -> unit
(** [iter t f] applies [f u v] to every pushed edge, in push order,
    without materialising tuples. *)
