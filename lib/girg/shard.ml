(* Sharded out-of-core generation: each shard process re-derives the vertex
   data from (seed, params), samples its contiguous band of the cell
   sampler's task enumeration, and spills the edges to a binary file.  The
   merge step validates the spill set and concatenates the edge streams in
   shard order, which reproduces single-process generation byte for byte
   (see [Cell.sample_edges_buf_stats]'s sharding contract). *)

let magic = "SWGSPIL1"

type header = {
  params : Params.t;
  seed : int;
  shards : int;
  shard : int;
  count : int;
  edges : int;
}

(* Spill layout (all integers little-endian):
     magic               8 bytes   "SWGSPIL1"
     endian tag          i32       0x01020304
     seed                i64
     shards              i32
     shard               i32
     count               i64       realised vertex count
     params block        47 bytes  see [Codec.write_params]
     edge count          i64
     edges               edge count x (u i32, v i32), sampling order *)

let header_bytes = 8 + 4 + 8 + 4 + 4 + 8 + Codec.params_block_size + 8

let check_shard_range ~shards ~shard =
  if shards < 1 then invalid_arg "Shard: shards must be >= 1";
  if shard < 0 || shard >= shards then invalid_arg "Shard: shard index out of range"

let sample ?pool ~seed ~shards ~shard params =
  check_shard_range ~shards ~shard;
  let params = Params.validate_exn params in
  let rng = Prng.Rng.create ~seed in
  let vd = Instance.derive_vertex_data ~rng params in
  let kernel = Kernel.girg params in
  let buf, _stats =
    Cell.sample_edges_buf_stats ?pool ~shard:(shard, shards) ~rng:vd.Instance.rng_edges
      ~kernel ~weights:vd.Instance.v_weights ~positions:vd.Instance.v_positions ()
  in
  (buf, vd.Instance.count)

let write_spill ~path ~seed ~shards ~shard ~params ~count buf =
  (* Write-then-rename so a crashed or killed shard process never leaves
     a truncated spill under the final name for the merge to trip on. *)
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  (try
     Out_channel.with_open_bin tmp (fun oc ->
         Codec.write_magic oc magic;
         Codec.write_i32 oc Codec.endian_tag;
         Codec.write_i64 oc seed;
         Codec.write_i32 oc shards;
         Codec.write_i32 oc shard;
         Codec.write_i64 oc count;
         Codec.write_params oc params;
         Codec.write_i64 oc (Edge_buf.length buf);
         Codec.write_edges_i32 oc (Edge_buf.flat buf) ~len:(Edge_buf.flat_len buf))
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let generate_spill ?pool ~path ~seed ~shards ~shard params =
  check_shard_range ~shards ~shard;
  let params = Params.validate_exn params in
  let buf, count = sample ?pool ~seed ~shards ~shard params in
  write_spill ~path ~seed ~shards ~shard ~params ~count buf;
  { params; seed; shards; shard; count; edges = Edge_buf.length buf }

let read_header_ic ic ~path =
  Codec.read_magic ic magic;
  Codec.check_endian_tag ic;
  let seed = Codec.read_i64 ic "seed" in
  let shards = Codec.read_i32 ic "shards" in
  let shard = Codec.read_i32 ic "shard" in
  let count = Codec.read_i64 ic "count" in
  let params = Codec.read_params ic in
  let edges = Codec.read_i64 ic "edge count" in
  if shards < 1 || shard < 0 || shard >= shards then
    Codec.corrupt "shard %d of %d out of range" shard shards;
  if count < 0 then Codec.corrupt "negative vertex count %d" count;
  if edges < 0 || edges > (Sys.max_array_length / 2) - 1 then
    Codec.corrupt "edge count %d out of range" edges;
  (* Oversized-count rejection: the edge section's byte size must match
     what remains of the file, so a forged count fails before any
     allocation sized by it. *)
  let remaining = Int64.sub (In_channel.length ic) (In_channel.pos ic) in
  if Int64.compare remaining (Int64.mul 8L (Int64.of_int edges)) <> 0 then
    Codec.corrupt "edge section of %s is %Ld bytes, header promises %Ld" path remaining
      (Int64.mul 8L (Int64.of_int edges));
  { params; seed; shards; shard; count; edges }

let with_file path f =
  match In_channel.with_open_bin path f with
  | v -> Ok v
  | exception Codec.Corrupt msg -> Error (Printf.sprintf "%s: %s" path msg)
  | exception Sys_error msg -> Error msg

let read_header ~path = with_file path (fun ic -> read_header_ic ic ~path)

let read_spill ~path =
  with_file path (fun ic ->
      let h = read_header_ic ic ~path in
      let buf = Edge_buf.create ~capacity:(max 1 h.edges) () in
      Codec.read_edges_i32 ic buf ~edges:h.edges ~max_vertex:h.count;
      (h, buf))

(* Validate a spill set: one spill per shard index 0..S-1, all stamped with
   the same seed/params/count/shard-total.  Returns the headers sorted in
   shard order paired with their paths. *)
let plan_merge ~paths =
  if paths = [] then Error "no spill files given"
  else begin
    let rec read_all acc = function
      | [] -> Ok (List.rev acc)
      | path :: rest -> begin
          match read_header ~path with
          | Ok h -> read_all ((path, h) :: acc) rest
          | Error e -> Error e
        end
    in
    match read_all [] paths with
    | Error e -> Error e
    | Ok headers -> begin
        let _, h0 = List.hd headers in
        let mismatch =
          List.find_opt
            (fun (_, h) ->
              h.seed <> h0.seed || h.shards <> h0.shards || h.count <> h0.count
              || h.params <> h0.params)
            headers
        in
        match mismatch with
        | Some (path, _) ->
            Error (Printf.sprintf "%s: spill header disagrees with %s" path (fst (List.hd headers)))
        | None ->
            if List.length headers <> h0.shards then
              Error
                (Printf.sprintf "expected %d spill files (one per shard), got %d" h0.shards
                   (List.length headers))
            else begin
              let sorted =
                List.sort (fun (_, a) (_, b) -> Int.compare a.shard b.shard) headers
              in
              let ok, _ =
                List.fold_left (fun (ok, i) (_, h) -> (ok && h.shard = i, i + 1)) (true, 0) sorted
              in
              if not ok then Error "spill set does not cover shards 0..S-1 exactly once"
              else Ok sorted
            end
      end
  end

(* Concatenate the spills' edge streams in shard order.  The result is the
   full instance edge buffer, byte-identical to single-process sampling. *)
let merge_edges ~paths =
  match plan_merge ~paths with
  | Error e -> Error e
  | Ok sorted -> begin
      let total = List.fold_left (fun acc (_, h) -> acc + h.edges) 0 sorted in
      if total > (Sys.max_array_length / 2) - 1 then
        Error (Printf.sprintf "merged edge count %d exceeds buffer capacity" total)
      else begin
        let _, h0 = List.hd sorted in
        let buf = Edge_buf.create ~capacity:(max 1 total) () in
        let rec fill = function
          | [] -> Ok (h0, buf)
          | (path, h) :: rest -> begin
              match
                with_file path (fun ic ->
                    let (_ : header) = read_header_ic ic ~path in
                    Codec.read_edges_i32 ic buf ~edges:h.edges ~max_vertex:h.count)
              with
              | Ok () -> fill rest
              | Error e -> Error e
            end
        in
        fill sorted
      end
    end

let merge ~paths () =
  match merge_edges ~paths with
  | Error e -> Error e
  | Ok (h, buf) ->
      let rng = Prng.Rng.create ~seed:h.seed in
      let vd = Instance.derive_vertex_data ~rng h.params in
      if vd.Instance.count <> h.count then
        Error
          (Printf.sprintf
             "seed %d derives %d vertices but spills were generated with %d — wrong seed or \
              params"
             h.seed vd.Instance.count h.count)
      else begin
        let graph =
          Obs.Span.with_ ~name:"girg.merge.build_graph" (fun () ->
              Sparse_graph.Graph.of_flat_halves ~n:h.count ~len:(Edge_buf.flat_len buf)
                (Edge_buf.flat buf))
        in
        Ok
          {
            Instance.params = h.params;
            weights = vd.Instance.v_weights;
            positions = vd.Instance.v_positions;
            packed =
              Geometry.Torus.Packed.of_points ~dim:h.params.Params.dim vd.Instance.v_positions;
            graph;
          }
      end
