open Geometry

type stats = { type1_pairs : int; type2_trials : int; cells_visited : int }

(* Scratch buckets: the vertices of one cell, split by weight layer.  Reused
   across cells; [touched] records which layers must be reset. *)
type buckets = {
  mutable touched : int list;
  counts : int array;
  data : int array array; (* data.(l) grows on demand *)
}

let buckets_create num_layers =
  {
    touched = [];
    counts = Array.make (max 1 num_layers) 0;
    data = Array.make (max 1 num_layers) [||];
  }

let buckets_reset b =
  List.iter (fun l -> b.counts.(l) <- 0) b.touched;
  b.touched <- []

let buckets_push b l v =
  let cnt = b.counts.(l) in
  if cnt = 0 then b.touched <- l :: b.touched;
  let arr = b.data.(l) in
  let arr =
    if cnt >= Array.length arr then begin
      let bigger = Array.make (max 4 (2 * Array.length arr)) 0 in
      Array.blit arr 0 bigger 0 cnt;
      b.data.(l) <- bigger;
      bigger
    end
    else arr
  in
  arr.(cnt) <- v;
  b.counts.(l) <- cnt + 1

let buckets_fill b grid ~lo ~hi ~layer_of =
  buckets_reset b;
  (* Direct loop over the cell's slice (precomputed during enumeration and
     carried in the task): no per-fill closure, no binary search, and
     [buckets_push] stays a known call. *)
  for k = lo to hi - 1 do
    let v = Grid.vertex_at grid k in
    buckets_push b layer_of.(v) v
  done

(* Toroidal adjacency of two cells at a level: every coordinate index differs
   by at most 1 (mod cells-per-side).  The caller provides two scratch
   buffers (length >= dim) so the check allocates nothing — it runs once
   per enumerated cell pair. *)
let cells_adjacent ~dim ~level ~scratch_a ~scratch_b a b =
  if level = 0 then true
  else begin
    let cps = 1 lsl level in
    Morton.decode_into ~dim ~level a ~into:scratch_a;
    Morton.decode_into ~dim ~level b ~into:scratch_b;
    let ok = ref true in
    for i = 0 to dim - 1 do
      let d = abs (scratch_a.(i) - scratch_b.(i)) in
      let d = min d (cps - d) in
      if d > 1 then ok := false
    done;
    !ok
  end

(* ------------------------------------------------------------------ *)
(* Task stream.

   The sampler is split into a deterministic enumeration phase and a
   sampling phase.  Enumeration walks the cell-pair recursion WITHOUT
   consuming randomness and records a flat stream of independent tasks;
   sampling processes the tasks (in parallel when a pool with jobs > 1
   is given), each under an RNG substream derived via SplitMix64 from
   (base seed, task key), and concatenates per-chunk edge buffers in
   task order.  Both phases are functions of the inputs alone, so the
   emitted edge array is bit-identical for every job count.

   A task is eight ints in [tasks]:
     kind  — 0 = type I cell pair, 1 = type II cell pair, 2 = capped vertex
     level — grid level of the pair (0 for capped tasks)
     a, b  — Morton codes of the two cells (for capped: a = vertex id, b = 0)
     alo, ahi, blo, bhi — the cells' sorted-order slices in the grid
             (0 for capped tasks); carried so that sampling never repeats
             the binary searches the enumeration already performed
*)

let k_type1 = 0
let k_type2 = 1
let k_capped = 2

type task_buf = { mutable t_data : int array; mutable t_len : int }

let task_buf_create () = { t_data = Array.make 256 0; t_len = 0 }

let task_push tb ~kind ~level ~a ~b ~alo ~ahi ~blo ~bhi =
  if tb.t_len + 8 > Array.length tb.t_data then begin
    let bigger = Array.make (2 * Array.length tb.t_data) 0 in
    Array.blit tb.t_data 0 bigger 0 tb.t_len;
    tb.t_data <- bigger
  end;
  let d = tb.t_data and i = tb.t_len in
  d.(i) <- kind;
  d.(i + 1) <- level;
  d.(i + 2) <- a;
  d.(i + 3) <- b;
  d.(i + 4) <- alo;
  d.(i + 5) <- ahi;
  d.(i + 6) <- blo;
  d.(i + 7) <- bhi;
  tb.t_len <- tb.t_len + 8

let task_count tb = tb.t_len / 8

(* Substream for one task: hash the task key into a seed with chained
   SplitMix64 finalizer steps.  The key involves only (base, kind, level,
   cell codes), never the task's position in the schedule. *)
let task_rng ~base ~kind ~level ~a ~b =
  Prng.Rng.of_mixed_triple ~base ~a ~b ~c:((level lsl 2) lor kind)

let sample_edges_buf_stats ?pool ?(shard = (0, 1)) ~rng ~kernel ~weights ~positions () =
  let n = Array.length weights in
  if Array.length positions <> n then invalid_arg "Cell.sample_edges: length mismatch";
  let shard_idx, shards = shard in
  if shards < 1 || shard_idx < 0 || shard_idx >= shards then
    invalid_arg "Cell.sample_edges: shard index out of range";
  let pool = match pool with Some p -> p | None -> Parallel.Global.get () in
  let dim = kernel.Kernel.dim in
  let type1_pairs = ref 0 and type2_trials = ref 0 and cells_visited = ref 0 in
  let out = Edge_buf.create () in
  if n > 0 then begin
    (* One draw stamps the whole sampling pass; every task substream is
       derived from it, so the caller's generator advances identically
       for any job count. *)
    let base = Prng.Rng.bits64 rng in
    (* SoA coordinates: the probe below is the innermost loop of the whole
       generator, and the packed kernel reads one contiguous buffer instead
       of chasing a per-vertex point pointer (values are bit-identical). *)
    let packed = Torus.Packed.of_points ~dim positions in
    (* Fused kernel when the model provides one (bit-identical values);
       otherwise the generic closure composition. *)
    let prob =
      match kernel.Kernel.prob_packed with
      | Some mk -> mk packed weights
      | None ->
          let dist_uv = Torus.Packed.dist_between_fn packed kernel.Kernel.norm in
          fun u v -> kernel.Kernel.prob ~wu:weights.(u) ~wv:weights.(v) ~dist:(dist_uv u v)
    in
    let flip rng p = p > 0.0 && (p >= 1.0 || Prng.Rng.unit_float rng < p) in
    (* Split off capped vertices (kernels whose envelope needs a weight cap). *)
    let capped = ref [] and regular = ref [] in
    for v = n - 1 downto 0 do
      if weights.(v) >= kernel.Kernel.weight_cap then capped := v :: !capped
      else regular := v :: !regular
    done;
    let capped = Array.of_list !capped and regular = Array.of_list !regular in
    let is_capped = Array.make n false in
    Array.iter (fun v -> is_capped.(v) <- true) capped;
    let nr = Array.length regular in
    (* Weight layers relative to the smallest regular weight (degenerate
       placeholders when there are no regular vertices — no grid task will
       be enumerated then). *)
    let w_base =
      if nr = 0 then 1.0
      else Array.fold_left (fun acc v -> Float.min acc weights.(v)) infinity regular
    in
    let layer_of_weight w =
      let l = int_of_float (Float.log2 (w /. w_base)) in
      if l < 0 then 0 else l
    in
    let num_layers =
      if nr = 0 then 0
      else 1 + Array.fold_left (fun acc v -> max acc (layer_of_weight weights.(v))) 0 regular
    in
    let layer_of = Array.make (max 1 n) 0 in
    Array.iter (fun v -> layer_of.(v) <- layer_of_weight weights.(v)) regular;
    let w_ub = Array.init num_layers (fun l -> w_base *. Float.of_int (1 lsl (l + 1))) in
    (* Grid depth: about one vertex per deepest cell. *)
    let depth =
      let by_count = int_of_float (Float.log2 (float_of_int (max 2 nr)) /. float_of_int dim) in
      max 1 (min by_count (Morton.max_level ~dim))
    in
    let level_of_pair i j =
      let vol = kernel.Kernel.saturation_volume ~wu_ub:w_ub.(i) ~wv_ub:w_ub.(j) in
      if vol >= 1.0 then 0
      else begin
        let l = int_of_float (floor (-.Float.log2 vol /. float_of_int dim)) in
        max 0 (min l depth)
      end
    in
    let level_matrix =
      Array.init num_layers (fun i -> Array.init num_layers (fun j -> level_of_pair i j))
    in
    let pairs_at_level = Array.make (depth + 1) [] in
    for i = 0 to num_layers - 1 do
      for j = i to num_layers - 1 do
        let l = level_matrix.(i).(j) in
        pairs_at_level.(l) <- (i, j) :: pairs_at_level.(l)
      done
    done;
    let max_pair_level =
      let best = ref 0 in
      Array.iteri (fun l pairs -> if pairs <> [] then best := max !best l) pairs_at_level;
      !best
    in
    let grid = Grid.build ~dim ~max_level:depth ~points:positions ~ids:regular in
    (* ---------------- enumeration (no randomness) ---------------- *)
    let tasks = task_buf_create () in
    Array.iter
      (fun u -> task_push tasks ~kind:k_capped ~level:0 ~a:u ~b:0 ~alo:0 ~ahi:0 ~blo:0 ~bhi:0)
      capped;
    if nr > 0 then begin
      let scratch_a = Array.make dim 0 and scratch_b = Array.make dim 0 in
      let kids = 1 lsl dim in
      (* Child slice boundaries, one scratch row per recursion depth so a
         parent's bounds survive the recursive calls made while reading
         them. *)
      let bounds_a = Array.init (max_pair_level + 1) (fun _ -> Array.make (kids + 1) 0) in
      let bounds_b = Array.init (max_pair_level + 1) (fun _ -> Array.make (kids + 1) 0) in
      let rec visit a b level ~alo ~ahi ~blo ~bhi =
        incr cells_visited;
        if pairs_at_level.(level) <> [] then
          task_push tasks ~kind:k_type1 ~level ~a ~b ~alo ~ahi ~blo ~bhi;
        if level < max_pair_level then begin
          let child_level = level + 1 in
          let ba = bounds_a.(level) in
          Grid.child_bounds grid ~child_level ~code:a ~lo:alo ~hi:ahi ba;
          let bb =
            if a = b then ba
            else begin
              let bb = bounds_b.(level) in
              Grid.child_bounds grid ~child_level ~code:b ~lo:blo ~hi:bhi bb;
              bb
            end
          in
          for xa = 0 to kids - 1 do
            let x = (a lsl dim) lor xa in
            let xlo = ba.(xa) and xhi = ba.(xa + 1) in
            if xhi > xlo then begin
              let yb_start = if a = b then xa else 0 in
              for yb = yb_start to kids - 1 do
                let y = (b lsl dim) lor yb in
                let ylo = bb.(yb) and yhi = bb.(yb + 1) in
                if (x < y || x = y) && yhi > ylo then begin
                  if cells_adjacent ~dim ~level:child_level ~scratch_a ~scratch_b x y then
                    visit x y child_level ~alo:xlo ~ahi:xhi ~blo:ylo ~bhi:yhi
                  else
                    task_push tasks ~kind:k_type2 ~level:child_level ~a:x ~b:y ~alo:xlo
                      ~ahi:xhi ~blo:ylo ~bhi:yhi
                end
              done
            end
          done
        end
      in
      let sz = Grid.size grid in
      visit 0 0 0 ~alo:0 ~ahi:sz ~blo:0 ~bhi:sz
    end;
    (* ---------------- sampling (parallel over task chunks) ---------------- *)
    (* Shard [i] of [S] owns the contiguous task-index band
       [i*nt/S, (i+1)*nt/S) of the canonical enumeration — a contiguous run
       of cell pairs in recursion (Morton/DFS) order.  Because edges are
       emitted in task order regardless of chunking, concatenating the
       shards' outputs in shard order reproduces the single-process edge
       stream byte for byte: the same argument that makes the output
       invariant under the job count makes it invariant under sharding. *)
    let nt = task_count tasks in
    let shard_lo = shard_idx * nt / shards and shard_hi = (shard_idx + 1) * nt / shards in
    let nst = shard_hi - shard_lo in
    if nst > 0 then begin
      let nchunks = min nst (max 1 (Parallel.Pool.jobs pool * 8)) in
      let process_chunk c =
        let lo = shard_lo + (c * nst / nchunks) and hi = shard_lo + ((c + 1) * nst / nchunks) in
        let out = Edge_buf.create ~capacity:256 () in
        let t1 = ref 0 and t2 = ref 0 in
        let sa = buckets_create num_layers and sb = buckets_create num_layers in
        (* Exhaustive test between bucket slices (type I). *)
        let test_all rng data_a cnt_a data_b cnt_b =
          for ia = 0 to cnt_a - 1 do
            let u = data_a.(ia) in
            for ib = 0 to cnt_b - 1 do
              let v = data_b.(ib) in
              incr t1;
              if flip rng (prob u v) then Edge_buf.push out u v
            done
          done
        in
        let test_triangular rng data cnt =
          for ia = 0 to cnt - 1 do
            let u = data.(ia) in
            for ib = ia + 1 to cnt - 1 do
              let v = data.(ib) in
              incr t1;
              if flip rng (prob u v) then Edge_buf.push out u v
            done
          done
        in
        let type1 rng ~same_cell ba bb i j =
          if i = j then begin
            if same_cell then test_triangular rng ba.data.(i) ba.counts.(i)
            else test_all rng ba.data.(i) ba.counts.(i) bb.data.(j) bb.counts.(j)
          end
          else begin
            test_all rng ba.data.(i) ba.counts.(i) bb.data.(j) bb.counts.(j);
            if not same_cell then test_all rng ba.data.(j) ba.counts.(j) bb.data.(i) bb.counts.(i)
          end
        in
        (* Geometric skip-sampling between two bucket slices (type II). *)
        let skip_sample rng data_a cnt_a data_b cnt_b ~p_ub =
          if cnt_a > 0 && cnt_b > 0 && p_ub > 0.0 then begin
            let total = cnt_a * cnt_b in
            let k = ref (Prng.Dist.geometric rng ~p:p_ub) in
            while !k < total do
              incr t2;
              let u = data_a.(!k / cnt_b) and v = data_b.(!k mod cnt_b) in
              let p = prob u v in
              if p > 0.0 && (p >= p_ub || Prng.Rng.unit_float rng < p /. p_ub) then
                Edge_buf.push out u v;
              let skip = Prng.Dist.geometric rng ~p:p_ub in
              k := if skip > total then total else !k + 1 + skip
            done
          end
        in
        for t = lo to hi - 1 do
          let d = tasks.t_data and i = 8 * t in
          let kind = d.(i) and level = d.(i + 1) and a = d.(i + 2) and b = d.(i + 3) in
          let alo = d.(i + 4) and ahi = d.(i + 5) and blo = d.(i + 6) and bhi = d.(i + 7) in
          let rng = task_rng ~base ~kind ~level ~a ~b in
          if kind = k_capped then begin
            let u = a in
            for v = 0 to n - 1 do
              if v <> u && ((not is_capped.(v)) || v > u) then begin
                incr t1;
                if flip rng (prob u v) then Edge_buf.push out u v
              end
            done
          end
          else if kind = k_type1 then begin
            let same_cell = a = b in
            buckets_fill sa grid ~lo:alo ~hi:ahi ~layer_of;
            let bb =
              if same_cell then sa
              else begin
                buckets_fill sb grid ~lo:blo ~hi:bhi ~layer_of;
                sb
              end
            in
            List.iter (fun (i, j) -> type1 rng ~same_cell sa bb i j) pairs_at_level.(level)
          end
          else begin
            buckets_fill sa grid ~lo:alo ~hi:ahi ~layer_of;
            buckets_fill sb grid ~lo:blo ~hi:bhi ~layer_of;
            if sa.touched <> [] && sb.touched <> [] then begin
              let min_dist = Morton.cell_min_dist ~dim ~level a b in
              List.iter
                (fun i ->
                  List.iter
                    (fun j ->
                      if level_matrix.(i).(j) >= level then begin
                        let p_ub =
                          kernel.Kernel.upper ~wu_ub:w_ub.(i) ~wv_ub:w_ub.(j) ~min_dist
                        in
                        skip_sample rng sa.data.(i) sa.counts.(i) sb.data.(j) sb.counts.(j)
                          ~p_ub
                      end)
                    sb.touched)
                sa.touched
            end
          end
        done;
        (out, !t1, !t2)
      in
      let chunks = Parallel.Pool.map pool ~n:nchunks process_chunk in
      Array.iter
        (fun (chunk_out, t1, t2) ->
          Edge_buf.append out chunk_out;
          type1_pairs := !type1_pairs + t1;
          type2_trials := !type2_trials + t2)
        chunks
    end
  end;
  ( out,
    { type1_pairs = !type1_pairs; type2_trials = !type2_trials; cells_visited = !cells_visited } )

let sample_edges_stats ?pool ~rng ~kernel ~weights ~positions () =
  let buf, stats = sample_edges_buf_stats ?pool ~rng ~kernel ~weights ~positions () in
  (Edge_buf.to_array buf, stats)

let sample_edges ?pool ~rng ~kernel ~weights ~positions () =
  fst (sample_edges_stats ?pool ~rng ~kernel ~weights ~positions ())
