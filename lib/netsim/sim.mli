(** A minimal discrete-event message-passing simulator.

    Nodes are integers; behaviour is a handler invoked once per delivered
    message.  Handlers interact with the world exclusively through the
    {!api} they receive — sending messages (delivered after the link
    latency) and halting the simulation.  Exactly one handler runs at a
    time, which makes the paper's "only one node needs to be awake at a
    time" observation directly visible: the trace of a greedy route is a
    single chain of events. *)

type 'msg api = {
  self : int;  (** the node running the handler *)
  now : float;  (** current simulation time *)
  send : dst:int -> 'msg -> unit;  (** schedule delivery at [now + latency] *)
  halt : unit -> unit;  (** stop the simulation after this handler returns *)
}

type 'msg t

val create :
  n:int ->
  ?latency:(src:int -> dst:int -> float) ->
  ?msg_label:('msg -> string) ->
  handler:('msg api -> src:int -> 'msg -> unit) ->
  unit ->
  'msg t
(** [latency] defaults to a constant 1.0 per link.  [msg_label] (default
    [fun _ -> "msg"]) names message kinds in flight-recorder events.
    @raise Invalid_argument if [n < 0]. *)

val trace_id : 'msg t -> int
(** The causal-trace id of this simulation instance.  Every message
    carries [(trace_id, msg_id, parent_id)] lineage; when the flight
    recorder is on, sends and deliveries appear as
    {!Obs.Events.Msg_send} / {!Obs.Events.Msg_recv} events carrying it,
    from which {!Causal} rebuilds the message tree. *)

val inject : 'msg t -> ?time:float -> dst:int -> 'msg -> unit
(** Enqueue an initial message, delivered at [time] (default 0.0) with
    source [dst] itself. *)

type stats = {
  deliveries : int;  (** handler invocations *)
  sends : int;  (** messages sent by handlers *)
  final_time : float;  (** delivery time of the last processed event *)
  halted : bool;  (** whether a handler called [halt] *)
  truncated : bool;
      (** the run stopped at [max_deliveries] with events still queued —
          distinct from a normal queue drain *)
}

val run : ?max_deliveries:int -> 'msg t -> stats
(** Process events until the queue drains, a handler halts, or
    [max_deliveries] (default 10^7) is reached.  The simulator feeds the
    [netsim.*] metrics (deliveries, sends, per-message latency, queue
    high-water mark, truncated runs). *)
