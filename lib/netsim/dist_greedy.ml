type packet = { target : Local_view.address }

let run ~inst ~source ~target ?latency () =
  let views = Local_view.of_instance inst in
  let n = Array.length views in
  if source < 0 || source >= n || target < 0 || target >= n then
    invalid_arg "Dist_greedy.run: endpoint out of range";
  (* Observer state (measurement only, not node knowledge). *)
  let walk = ref [] in
  let status = ref Greedy_routing.Outcome.Cutoff in
  let handler (api : packet Sim.api) ~src:_ { target = tgt } =
    let view = views.(api.Sim.self) in
    walk := api.Sim.self :: !walk;
    if api.Sim.self = tgt.Local_view.id then begin
      status := Greedy_routing.Outcome.Delivered;
      api.Sim.halt ()
    end
    else begin
      let own = Local_view.phi view view.Local_view.self ~target:tgt in
      match Local_view.best_neighbor view ~target:tgt with
      | Some (next, score) when score > own -> api.Sim.send ~dst:next.Local_view.id { target = tgt }
      | Some _ | None ->
          status := Greedy_routing.Outcome.Dead_end;
          api.Sim.halt ()
    end
  in
  let sim = Sim.create ~n ?latency ~msg_label:(fun _ -> "packet") ~handler () in
  Sim.inject sim ~dst:source { target = views.(target).Local_view.self };
  let stats = Sim.run sim in
  let walk = List.rev !walk in
  let distinct = List.sort_uniq compare walk in
  ( {
      Greedy_routing.Outcome.status = !status;
      steps = max 0 (List.length walk - 1);
      visited = List.length distinct;
      walk;
    },
    stats )
