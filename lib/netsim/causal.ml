(* Causal-tree reconstruction from the flight recorder.

   Sim stamps every envelope with (trace, msg, parent) lineage and emits
   Msg_send / Msg_recv events; this module folds those events back into
   the message tree of one simulation, entirely offline — the protocol
   handlers never see any of it.  For the token-passing routing
   protocols (one send per delivery) the tree degenerates to a chain
   whose preorder of delivered destinations is exactly the route walk,
   which is what the equivalence test against the sequential
   [Outcome.walk] checks. *)

type node = {
  msg_id : int;
  parent_id : int;  (* -1 for injected roots *)
  src : int;
  dst : int;
  kind : string;
  sent_seq : int;
  sent_time : float;  (* simulation time of the send *)
  recv_seq : int option;  (* None when never delivered *)
  recv_time : float option;
  children : node list;  (* in send order *)
}

let trace_ids events =
  List.sort_uniq compare
    (List.filter_map
       (fun (e : Obs.Events.event) ->
         match e.payload with
         | Obs.Events.Msg_send { trace; _ } | Obs.Events.Msg_recv { trace; _ } -> Some trace
         | _ -> None)
       events)

let of_trace ~trace_id events =
  (* First pass: one mutable slot per Msg_send, keyed by msg id; a recv
     without a send means the send was overwritten in the ring — drop it
     (the tree is reconstructed from whatever survived). *)
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun (e : Obs.Events.event) ->
      match e.payload with
      | Obs.Events.Msg_send { trace; msg; parent; src; dst; kind; sim_time } when trace = trace_id ->
          if not (Hashtbl.mem tbl msg) then begin
            Hashtbl.add tbl msg
              {
                msg_id = msg;
                parent_id = parent;
                src;
                dst;
                kind;
                sent_seq = e.seq;
                sent_time = sim_time;
                recv_seq = None;
                recv_time = None;
                children = [];
              };
            order := msg :: !order
          end
      | Obs.Events.Msg_recv { trace; msg; sim_time; _ } when trace = trace_id -> (
          match Hashtbl.find_opt tbl msg with
          | Some n -> Hashtbl.replace tbl msg { n with recv_seq = Some e.seq; recv_time = Some sim_time }
          | None -> ())
      | _ -> ())
    events;
  (* Second pass, children before parents (descending send order), so
     each node is finalised when its parent absorbs it. *)
  let roots = ref [] in
  List.iter
    (fun msg ->
      let n = Hashtbl.find tbl msg in
      match Hashtbl.find_opt tbl n.parent_id with
      | Some p when n.parent_id >= 0 -> Hashtbl.replace tbl n.parent_id { p with children = n :: p.children }
      | Some _ | None -> roots := n :: !roots)
    !order;
  List.sort (fun a b -> compare a.sent_seq b.sent_seq) !roots

let rec fold f acc node = List.fold_left (fold f) (f acc node) node.children

let size root = fold (fun acc _ -> acc + 1) 0 root

let rec depth node = 1 + List.fold_left (fun acc c -> max acc (depth c)) 0 node.children

let delivery_walk roots =
  (* Preorder over delivered messages.  Token-passing gives a chain, so
     this is the walk; on a genuine tree it is the causal order with
     siblings in send order. *)
  let rec go acc n =
    let acc = match n.recv_seq with Some _ -> n.dst :: acc | None -> acc in
    List.fold_left go acc n.children
  in
  List.rev (List.fold_left go [] roots)

let is_chain roots =
  match roots with
  | [ root ] ->
      let rec go n =
        match n.children with [] -> true | [ c ] -> go c | _ :: _ :: _ -> false
      in
      go root
  | _ -> false
