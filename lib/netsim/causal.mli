(** Offline causal-tree reconstruction of a simulation run from the
    flight recorder's [Msg_send]/[Msg_recv] events.

    {!Sim} stamps every envelope with [(trace_id, msg_id, parent_id)]
    lineage; replaying the event log rebuilds who-caused-what without
    any cooperation from the protocol handlers.  For the token-passing
    routing protocols (greedy, Φ-DFS) the tree is a chain and
    {!delivery_walk} reproduces the route's [Outcome.walk] exactly —
    the equivalence is test-enforced. *)

type node = {
  msg_id : int;
  parent_id : int;  (** [-1] for injected roots *)
  src : int;
  dst : int;
  kind : string;  (** the simulation's [msg_label] *)
  sent_seq : int;  (** flight-recorder sequence number of the send *)
  sent_time : float;  (** simulation time of the send *)
  recv_seq : int option;  (** [None] when the delivery never happened
                              (truncated run) or was overwritten *)
  recv_time : float option;
  children : node list;  (** messages sent by this message's handler,
                             in send order *)
}

val trace_ids : Obs.Events.event list -> int list
(** Distinct simulation traces present in an event log, ascending. *)

val of_trace : trace_id:int -> Obs.Events.event list -> node list
(** Reconstruct the message forest of one trace (roots in send order —
    one root per {!Sim.inject}).  Sends whose event was overwritten in
    the ring are absent; their subtrees surface as extra roots. *)

val delivery_walk : node list -> int list
(** Destination vertices of delivered messages in causal preorder.  For
    a token-passing protocol this is the route walk, including the
    source (the injected root delivers to it). *)

val is_chain : node list -> bool
(** True iff the forest is a single root with at most one child per
    node — the shape token-passing protocols must produce. *)

val fold : ('a -> node -> 'a) -> 'a -> node -> 'a
(** Preorder fold over a tree. *)

val size : node -> int
val depth : node -> int
