type fields = { m_phi : float; best_seen : float; target : Local_view.address }

type msg = Explore of fields | Backtrack of fields

(* Transcription of the Algorithm 2 state machine (see
   Greedy_routing.Patch_dfs for the centralised version and the detailed
   commentary).  A handler invocation may perform several in-place
   transitions (the paper's step-free "resume" moves) before the token
   leaves the node in a single send. *)

let run ~inst ~source ~target ?latency ?(max_deliveries = 10_000_000) () =
  let views = Local_view.of_instance inst in
  let n = Array.length views in
  if source < 0 || source >= n || target < 0 || target >= n then
    invalid_arg "Dist_dfs.run: endpoint out of range";
  (* Per-node protocol state: a constant number of words each. *)
  let v_phi = Array.make n nan in
  let v_parent = Array.make n (-1) in
  let v_started = Array.make n false in
  let v_prev_phi = Array.make n neg_infinity in
  (* Observer state. *)
  let walk = ref [] in
  let status = ref Greedy_routing.Outcome.Cutoff in
  let handler (api : msg Sim.api) ~src initial_msg =
    let v = api.Sim.self in
    let view = views.(v) in
    walk := v :: !walk;
    let phi_of addr target = Local_view.phi view addr ~target in
    let phi_self target = phi_of view.Local_view.self target in
    (* phi of a node we hold an edge to (the walk only moves along edges). *)
    let phi_neighbor u target =
      if u = v then phi_self target
      else begin
        let rec find k =
          if k >= Array.length view.Local_view.neighbors then
            invalid_arg "Dist_dfs: message from a non-neighbor"
          else if view.Local_view.neighbors.(k).Local_view.id = u then
            phi_of view.Local_view.neighbors.(k) target
          else find (k + 1)
        in
        find 0
      end
    in
    let exists_geq target threshold =
      Array.exists (fun a -> phi_of a target >= threshold) view.Local_view.neighbors
    in
    let best_neighbor target = Local_view.best_neighbor view ~target in
    let best_child target ~parent ~bound ~m_phi =
      let best = ref None and best_score = ref neg_infinity in
      Array.iter
        (fun a ->
          if a.Local_view.id <> parent then begin
            let s = phi_of a target in
            if s >= m_phi && s < bound && s > !best_score then begin
              best := Some a;
              best_score := s
            end
          end)
        view.Local_view.neighbors;
      !best
    in
    (* In-place transitions loop: [came_from] plays the pseudocode's
       m.last_visited_vertex role. *)
    let rec explore ~came_from (f : fields) =
      if v = f.target.Local_view.id then begin
        status := Greedy_routing.Outcome.Delivered;
        api.Sim.halt ()
      end
      else if v_phi.(v) = f.m_phi then backtrack_to came_from ~came_from f
      else begin
        let pv = phi_self f.target in
        let f =
          if pv > f.best_seen then begin
            let f = { f with best_seen = pv } in
            if exists_geq f.target pv then begin
              v_started.(v) <- true;
              v_prev_phi.(v) <- f.m_phi;
              { f with m_phi = pv }
            end
            else f
          end
          else f
        in
        v_phi.(v) <- f.m_phi;
        v_parent.(v) <- came_from;
        match best_neighbor f.target with
        | Some (u, pu) when pu >= f.m_phi -> api.Sim.send ~dst:u.Local_view.id (Explore f)
        | Some _ | None -> backtrack_to came_from ~came_from f
      end
    and backtrack_to dst ~came_from f =
      if dst = v then backtrack ~came_from f else api.Sim.send ~dst (Backtrack f)
    and backtrack ~came_from f =
      let bound = phi_neighbor came_from f.target in
      match best_child f.target ~parent:v_parent.(v) ~bound ~m_phi:f.m_phi with
      | Some u -> api.Sim.send ~dst:u.Local_view.id (Explore f)
      | None ->
          if v_started.(v) then begin
            v_started.(v) <- false;
            let f = { f with m_phi = v_prev_phi.(v) } in
            v_phi.(v) <- v_prev_phi.(v);
            (match best_neighbor f.target with
            | Some (u, pu) when pu >= f.m_phi -> api.Sim.send ~dst:u.Local_view.id (Explore f)
            | Some _ | None ->
                if v_parent.(v) = v then begin
                  status := Greedy_routing.Outcome.Exhausted;
                  api.Sim.halt ()
                end
                else backtrack_to v_parent.(v) ~came_from f)
          end
          else if v_parent.(v) = v then begin
            status := Greedy_routing.Outcome.Exhausted;
            api.Sim.halt ()
          end
          else backtrack_to v_parent.(v) ~came_from f
    in
    match initial_msg with
    | Explore f -> explore ~came_from:src f
    | Backtrack f -> backtrack ~came_from:src f
  in
  let sim =
    Sim.create ~n ?latency
      ~msg_label:(function Explore _ -> "explore" | Backtrack _ -> "backtrack")
      ~handler ()
  in
  (* ROUTING initialisation (line 5 of the pseudocode). *)
  let target_addr = views.(target).Local_view.self in
  v_phi.(source) <- Local_view.phi views.(source) views.(source).Local_view.self ~target:target_addr;
  Sim.inject sim ~dst:source
    (Explore { m_phi = neg_infinity; best_seen = neg_infinity; target = target_addr });
  let stats = Sim.run ~max_deliveries sim in
  let walk = List.rev !walk in
  let distinct = List.sort_uniq compare walk in
  ( {
      Greedy_routing.Outcome.status = !status;
      steps = max 0 (List.length walk - 1);
      visited = List.length distinct;
      walk;
    },
    stats )
