type 'msg api = {
  self : int;
  now : float;
  send : dst:int -> 'msg -> unit;
  halt : unit -> unit;
}

type 'msg envelope = { src : int; dst : int; sent : float; msg : 'msg }

type 'msg t = {
  n : int;
  latency : src:int -> dst:int -> float;
  handler : 'msg api -> src:int -> 'msg -> unit;
  queue : 'msg envelope Event_queue.t;
  mutable sends : int;
  mutable halted : bool;
}

let c_runs = Obs.Metrics.counter "netsim.runs"
let c_deliveries = Obs.Metrics.counter "netsim.deliveries"
let c_sends = Obs.Metrics.counter "netsim.sends"
let c_truncated = Obs.Metrics.counter "netsim.truncated_runs"
let g_queue_hwm = Obs.Metrics.gauge "netsim.queue_depth_hwm"
let h_msg_latency = Obs.Metrics.histogram "netsim.msg_latency"
let h_run_deliveries = Obs.Metrics.histogram "netsim.run_deliveries"

let create ~n ?(latency = fun ~src:_ ~dst:_ -> 1.0) ~handler () =
  if n < 0 then invalid_arg "Sim.create: negative n";
  { n; latency; handler; queue = Event_queue.create (); sends = 0; halted = false }

let check_node t v ctx =
  if v < 0 || v >= t.n then invalid_arg (ctx ^ ": node id out of range")

let inject t ?(time = 0.0) ~dst msg =
  check_node t dst "Sim.inject";
  Event_queue.push t.queue ~time { src = dst; dst; sent = time; msg }

type stats = {
  deliveries : int;
  sends : int;
  final_time : float;
  halted : bool;
  truncated : bool;
}

let run ?(max_deliveries = 10_000_000) (t : 'msg t) =
  Obs.Metrics.incr c_runs;
  let deliveries = ref 0 in
  let final_time = ref 0.0 in
  let continue = ref true in
  while !continue && not t.halted && !deliveries < max_deliveries do
    match Event_queue.pop t.queue with
    | None -> continue := false
    | Some (time, env) ->
        incr deliveries;
        Obs.Metrics.incr c_deliveries;
        Obs.Metrics.observe h_msg_latency (time -. env.sent);
        final_time := time;
        let api =
          {
            self = env.dst;
            now = time;
            send =
              (fun ~dst msg ->
                check_node t dst "Sim.send";
                t.sends <- t.sends + 1;
                Obs.Metrics.incr c_sends;
                Event_queue.push t.queue
                  ~time:(time +. t.latency ~src:env.dst ~dst)
                  { src = env.dst; dst; sent = time; msg });
            halt = (fun () -> t.halted <- true);
          }
        in
        t.handler api ~src:env.src env.msg;
        Obs.Metrics.set_max g_queue_hwm (float_of_int (Event_queue.size t.queue))
  done;
  (* Reaching the delivery cap with work still queued is not the same thing
     as the queue draining; report it distinctly (and count it). *)
  let truncated =
    (not t.halted) && !deliveries >= max_deliveries
    && not (Event_queue.is_empty t.queue)
  in
  if truncated then Obs.Metrics.incr c_truncated;
  Obs.Metrics.observe h_run_deliveries (float_of_int !deliveries);
  {
    deliveries = !deliveries;
    sends = t.sends;
    final_time = !final_time;
    halted = t.halted;
    truncated;
  }
