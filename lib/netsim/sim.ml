type 'msg api = {
  self : int;
  now : float;
  send : dst:int -> 'msg -> unit;
  halt : unit -> unit;
}

(* Every envelope carries its causal lineage: a per-simulation trace id,
   a unique message id, and the id of the message whose handler sent it
   (-1 for injected roots).  The lineage costs three ints per envelope
   and is maintained unconditionally; only the event emission is gated
   on the flight recorder. *)
type 'msg envelope = {
  src : int;
  dst : int;
  sent : float;
  msg : 'msg;
  msg_id : int;
  parent_id : int;
}

type 'msg t = {
  n : int;
  latency : src:int -> dst:int -> float;
  handler : 'msg api -> src:int -> 'msg -> unit;
  queue : 'msg envelope Event_queue.t;
  trace_id : int;
  msg_label : 'msg -> string;
  mutable next_msg_id : int;
  mutable sends : int;
  mutable halted : bool;
}

let c_runs = Obs.Metrics.counter "netsim.runs"
let c_deliveries = Obs.Metrics.counter "netsim.deliveries"
let c_sends = Obs.Metrics.counter "netsim.sends"
let c_truncated = Obs.Metrics.counter "netsim.truncated_runs"
let g_queue_hwm = Obs.Metrics.gauge "netsim.queue_depth_hwm"
let h_msg_latency = Obs.Metrics.histogram "netsim.msg_latency"
let h_run_deliveries = Obs.Metrics.histogram "netsim.run_deliveries"

let next_trace = ref 0

let create ~n ?(latency = fun ~src:_ ~dst:_ -> 1.0) ?(msg_label = fun _ -> "msg") ~handler () =
  if n < 0 then invalid_arg "Sim.create: negative n";
  incr next_trace;
  {
    n;
    latency;
    handler;
    queue = Event_queue.create ();
    trace_id = !next_trace;
    msg_label;
    next_msg_id = 0;
    sends = 0;
    halted = false;
  }

let trace_id t = t.trace_id

let fresh_msg_id t =
  let id = t.next_msg_id in
  t.next_msg_id <- id + 1;
  id

let check_node t v ctx =
  if v < 0 || v >= t.n then invalid_arg (ctx ^ ": node id out of range")

let emit_msg_event t make (env : 'msg envelope) ~sim_time =
  Obs.Events.emit
    (make ~trace:t.trace_id ~msg:env.msg_id ~parent:env.parent_id ~src:env.src ~dst:env.dst
       ~kind:(t.msg_label env.msg) ~sim_time)

let send_event t env ~sim_time =
  if Obs.Events.recording () then
    emit_msg_event t
      (fun ~trace ~msg ~parent ~src ~dst ~kind ~sim_time ->
        Obs.Events.Msg_send { trace; msg; parent; src; dst; kind; sim_time })
      env ~sim_time

let recv_event t env ~sim_time =
  if Obs.Events.recording () then
    emit_msg_event t
      (fun ~trace ~msg ~parent ~src ~dst ~kind ~sim_time ->
        Obs.Events.Msg_recv { trace; msg; parent; src; dst; kind; sim_time })
      env ~sim_time

let inject t ?(time = 0.0) ~dst msg =
  check_node t dst "Sim.inject";
  let env = { src = dst; dst; sent = time; msg; msg_id = fresh_msg_id t; parent_id = -1 } in
  send_event t env ~sim_time:time;
  Event_queue.push t.queue ~time env

type stats = {
  deliveries : int;
  sends : int;
  final_time : float;
  halted : bool;
  truncated : bool;
}

let run ?(max_deliveries = 10_000_000) (t : 'msg t) =
  Obs.Metrics.incr c_runs;
  let deliveries = ref 0 in
  let final_time = ref 0.0 in
  let continue = ref true in
  while !continue && not t.halted && !deliveries < max_deliveries do
    match Event_queue.pop t.queue with
    | None -> continue := false
    | Some (time, env) ->
        incr deliveries;
        Obs.Metrics.incr c_deliveries;
        Obs.Metrics.observe h_msg_latency (time -. env.sent);
        recv_event t env ~sim_time:time;
        final_time := time;
        let api =
          {
            self = env.dst;
            now = time;
            send =
              (fun ~dst msg ->
                check_node t dst "Sim.send";
                t.sends <- t.sends + 1;
                Obs.Metrics.incr c_sends;
                let out =
                  { src = env.dst; dst; sent = time; msg; msg_id = fresh_msg_id t;
                    parent_id = env.msg_id }
                in
                send_event t out ~sim_time:time;
                Event_queue.push t.queue ~time:(time +. t.latency ~src:env.dst ~dst) out);
            halt = (fun () -> t.halted <- true);
          }
        in
        t.handler api ~src:env.src env.msg;
        Obs.Metrics.set_max g_queue_hwm (float_of_int (Event_queue.size t.queue))
  done;
  (* Reaching the delivery cap with work still queued is not the same thing
     as the queue draining; report it distinctly (and count it). *)
  let truncated =
    (not t.halted) && !deliveries >= max_deliveries
    && not (Event_queue.is_empty t.queue)
  in
  if truncated then Obs.Metrics.incr c_truncated;
  Obs.Metrics.observe h_run_deliveries (float_of_int !deliveries);
  {
    deliveries = !deliveries;
    sends = t.sends;
    final_time = !final_time;
    halted = t.halted;
    truncated;
  }
