(** Immutable undirected graphs in compressed sparse row (CSR) form.

    Vertices are integers [0 .. n-1].  The representation stores each
    undirected edge in both directions, sorted per vertex, which gives cache-
    friendly neighbour scans — the inner loop of every routing protocol. *)

type t

val of_edges : n:int -> (int * int) array -> t
(** [of_edges ~n edges] builds the graph on [n] vertices.  Self-loops and
    duplicate edges are dropped.  @raise Invalid_argument on out-of-range
    endpoints.  (Thin wrapper over {!of_flat_halves}.) *)

val of_flat_halves : n:int -> len:int -> int array -> t
(** [of_flat_halves ~n ~len flat] builds the graph from interleaved edge
    endpoints [flat.(0..len-1) = u0; v0; u1; v1; ...] — the native layout of
    the generators' edge buffers, so no boxed [(u, v)] tuples are
    materialised.  Entries beyond [len] are ignored.  Semantics (self-loop /
    duplicate dropping, validation, resulting CSR) are identical to
    {!of_edges}.  @raise Invalid_argument if [len] is odd, exceeds the
    array, or an endpoint is out of range. *)

val of_edge_list : n:int -> (int * int) list -> t
(** List variant of {!of_edges}. *)

val n : t -> int
(** Number of vertices. *)

val m : t -> int
(** Number of undirected edges. *)

val degree : t -> int -> int

val iter_neighbors : t -> int -> (int -> unit) -> unit
(** [iter_neighbors g v f] applies [f] to each neighbour of [v] in ascending
    order. *)

val fold_neighbors : t -> int -> init:'a -> f:('a -> int -> 'a) -> 'a

val exists_neighbor : t -> int -> (int -> bool) -> bool

val neighbors : t -> int -> int array
(** Fresh array of the neighbours of [v] (ascending). *)

val has_edge : t -> int -> int -> bool
(** Binary search in the adjacency slice: O(log deg). *)

val iter_edges : t -> (int -> int -> unit) -> unit
(** Applies the function once per undirected edge, with [u < v]. *)

val max_degree : t -> int

val avg_degree : t -> float
