(** Undirected graphs in compressed sparse row (CSR) form, with an
    epoch-based copy-on-write overlay for live mutation.

    Vertices are integers [0 .. n-1].  The representation stores each
    undirected edge in both directions, sorted per vertex, which gives cache-
    friendly neighbour scans — the inner loop of every routing protocol.

    The CSR arrays are {!Bigarray.Array1} values (native-int elements,
    C layout) rather than heap [int array]s: the payload lives outside the
    OCaml heap, and the same representation serves both freshly built
    graphs and zero-copy views into an [Unix.map_file]'d snapshot.

    {!apply} layers a per-epoch delta (departed vertices, dropped base
    edges, added overlay edges) over the immutable base arrays; every
    traversal accessor serves the merged view, still in ascending
    neighbour order, so routing protocols run unchanged on a mutated
    graph.  The base arrays are never written — mutating a graph whose
    CSR section is an mmap'd snapshot is safe — and {!compact} folds the
    delta back into a fresh heap CSR. *)

type t

type int_bigarray = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
(** Element type of the CSR arrays: one native-width OCaml [int] per cell
    (8 bytes on 64-bit), so an int64-LE snapshot section maps directly. *)

val of_edges : n:int -> (int * int) array -> t
(** [of_edges ~n edges] builds the graph on [n] vertices.  Self-loops and
    duplicate edges are dropped.  @raise Invalid_argument on out-of-range
    endpoints.  (Thin wrapper over {!of_flat_halves}.) *)

val of_flat_halves : n:int -> len:int -> int array -> t
(** [of_flat_halves ~n ~len flat] builds the graph from interleaved edge
    endpoints [flat.(0..len-1) = u0; v0; u1; v1; ...] — the native layout of
    the generators' edge buffers, so no boxed [(u, v)] tuples are
    materialised.  Entries beyond [len] are ignored.  Semantics (self-loop /
    duplicate dropping, validation, resulting CSR) are identical to
    {!of_edges}.  @raise Invalid_argument if [len] is odd, exceeds the
    array, or an endpoint is out of range. *)

val of_edge_list : n:int -> (int * int) list -> t
(** List variant of {!of_edges}. *)

val of_bigarrays :
  ?validate:bool -> n:int -> offsets:int_bigarray -> targets:int_bigarray -> unit ->
  (t, string) result
(** [of_bigarrays ~n ~offsets ~targets ()] adopts already-built CSR arrays —
    typically views into an mmap'd snapshot — without copying.  One
    sequential pass validates the invariants ([offsets] has length [n+1],
    starts at 0, is monotone, ends at the [targets] length; every target in
    [0, n)); corrupt input yields [Error] rather than a crash deep inside a
    traversal.  The graph aliases the given arrays: they must not be
    mutated afterwards, and for mapped files the mapping must outlive the
    graph (the [Bigarray] finaliser unmaps when the last view is
    collected).

    [~validate:false] skips the sequential pass over the array contents
    (the length/endpoint checks stay).  That pass touches every page, so
    it would fault a lazily-mapped snapshot fully resident and defeat
    {!Girg.Store.load_mmap}; callers may skip it only when the arrays
    were already validated structurally (e.g. a snapshot whose section
    sizes matched its header).  Even then corruption cannot corrupt
    memory: [Bigarray] accesses are bounds-checked, so a bad offset or
    target raises during traversal instead of reading wild. *)

val offsets_ba : t -> int_bigarray
(** The live offsets array (length [n+1]).  Read-only; aliases the graph.
    @raise Invalid_argument when the graph carries a delta ({!apply} was
    used and {!compact} has not folded it): the base arrays alone do not
    describe the merged view. *)

val targets_ba : t -> int_bigarray
(** The live targets array (length [2m]).  Read-only; aliases the graph.
    @raise Invalid_argument when the graph carries a delta — see
    {!offsets_ba}. *)

val n : t -> int
(** Number of vertices (including departed ones, which read as isolated). *)

val m : t -> int
(** Number of undirected edges in the merged view. *)

val degree : t -> int -> int

val iter_neighbors : t -> int -> (int -> unit) -> unit
(** [iter_neighbors g v f] applies [f] to each neighbour of [v] in ascending
    order. *)

val fold_neighbors : t -> int -> init:'a -> f:('a -> int -> 'a) -> 'a

val exists_neighbor : t -> int -> (int -> bool) -> bool

val neighbors : t -> int -> int array
(** Fresh array of the neighbours of [v] (ascending). *)

val has_edge : t -> int -> int -> bool
(** Binary search in the adjacency slice: O(log deg). *)

val iter_edges : t -> (int -> int -> unit) -> unit
(** Applies the function once per undirected edge, with [u < v]. *)

val max_degree : t -> int

val avg_degree : t -> float
(** [2m / n] of the merged view; departed vertices stay in the
    denominator (they are isolated, not renumbered). *)

(** {1 Live mutation}

    The write path of the live-graph subsystem.  Mutations never touch
    the base CSR arrays; they build a fresh delta (copy-on-write, so
    holders of the previous value keep a consistent snapshot) and stamp
    the result with a new epoch. *)

type mutation =
  | Remove_vertex of int
      (** The vertex departs: its base edges are masked and its overlay
          edges are stripped {e permanently} (a later {!Restore_vertex}
          brings only the base edges back).  No-op if already departed. *)
  | Restore_vertex of int
      (** The vertex rejoins with its base edges, minus any that were
          explicitly dropped.  No-op if live. *)
  | Remove_edge of int * int
      (** Drops the edge from the merged view, whether it is a base or
          an overlay edge.  No-op if absent or if either endpoint has
          departed. *)
  | Add_edge of int * int
      (** Adds the edge: un-drops a masked base edge, otherwise inserts
          an overlay edge.  No-op if already present.
          @raise Invalid_argument on a self-loop or a departed endpoint
          (checked by {!apply}). *)

val epoch : t -> int
(** [0] for a freshly built graph; each {!apply} stamps its result. *)

val live : t -> int -> bool
(** False exactly for departed vertices. *)

val live_count : t -> int
(** Number of live vertices ([n t] minus departures). *)

val apply : ?epoch:int -> t -> mutation list -> t
(** [apply ?epoch t ms] applies the mutations in order and returns the
    new view; [t] itself is unchanged and remains valid (readers pin
    the epoch they hold).  [epoch] defaults to [epoch t + 1]; callers
    batching several {!apply} calls into one logical version pass the
    same epoch explicitly.  Cost: O(changes) for the delta plus one
    O(n + m) recount of the merged edge total.
    @raise Invalid_argument on an out-of-range vertex, a self-loop
    [Add_edge], or an [Add_edge] touching a departed endpoint. *)

val compact : t -> t
(** Folds the delta into a fresh heap CSR with no delta, preserving the
    vertex numbering (departed vertices become permanently isolated live
    vertices) and the epoch.  Identity when the graph has no delta.
    Traversal results are identical before and after. *)
