module A1 = Bigarray.Array1

type int_bigarray = (int, Bigarray.int_elt, Bigarray.c_layout) A1.t

(* CSR arrays live in Bigarrays rather than heap [int array]s: the payload is
   outside the OCaml heap (the GC neither copies nor scans hundreds of
   millions of words), and a snapshot's CSR section can be [Unix.map_file]'d
   and traversed zero-copy through the exact same representation.

   Live graphs layer a copy-on-write delta over the immutable base CSR:
   departed vertices and dropped base edges are masked at read time, and
   added edges live in small per-vertex sorted overlays.  The base arrays
   are never written — an mmap'd snapshot stays safely shared — and a
   graph with [delta = None] pays only one branch per accessor. *)
type delta = {
  removed : Bytes.t;  (* length n; '\001' = vertex departed *)
  dropped : (int, unit) Hashtbl.t;  (* masked base edges, keyed min*n+max *)
  added : int array array;  (* per-vertex sorted overlay neighbours *)
}

type t = {
  n : int;
  m : int;  (* undirected edge count of the merged view *)
  epoch : int;  (* 0 for a freshly built graph; bumped by [apply] *)
  offsets : int_bigarray; (* length n+1 *)
  targets : int_bigarray; (* length 2m, neighbours of v at offsets.{v}..offsets.{v+1}-1 *)
  delta : delta option;
}

let ba_create len = A1.create Bigarray.int Bigarray.c_layout len

(* Insertion sort of a slice of an int array; adjacency slices are short on
   sparse graphs, so this beats a general comparison sort. *)
let sort_slice arr lo hi =
  if hi - lo > 48 then begin
    (* Heavy hubs (power-law graphs have a few) get a comparison sort. *)
    let tmp = Array.sub arr lo (hi - lo) in
    Array.sort Int.compare tmp;
    Array.blit tmp 0 arr lo (hi - lo)
  end
  else
  for i = lo + 1 to hi - 1 do
    let x = arr.(i) in
    let j = ref (i - 1) in
    while !j >= lo && arr.(!j) > x do
      arr.(!j + 1) <- arr.(!j);
      decr j
    done;
    arr.(!j + 1) <- x
  done

(* Counting-sort CSR construction over an interleaved half-edge array
   [u0; v0; u1; v1; ...] — the native output format of the edge samplers'
   [Edge_buf], so generation feeds the graph build without materialising a
   boxed [(u, v) array].  Bucket raw half-edges per vertex, sort each short
   adjacency slice, compact away self-loops/duplicates in place, then copy
   the survivors into the final Bigarrays.  Scratch stays in heap [int
   array]s — it is transient and the final arrays are what must be
   Bigarray-shaped. *)
let of_flat_halves ~n ~len flat =
  if n < 0 then invalid_arg "Graph.of_edges: negative n";
  if len < 0 || len > Array.length flat then invalid_arg "Graph.of_flat_halves: bad length";
  if len land 1 <> 0 then invalid_arg "Graph.of_flat_halves: odd length";
  for k = 0 to len - 1 do
    let x = flat.(k) in
    if x < 0 || x >= n then invalid_arg "Graph.of_edges: endpoint out of range"
  done;
  let raw_degree = Array.make (n + 1) 0 in
  let k = ref 0 in
  while !k < len do
    let u = flat.(!k) and v = flat.(!k + 1) in
    if u <> v then begin
      raw_degree.(u) <- raw_degree.(u) + 1;
      raw_degree.(v) <- raw_degree.(v) + 1
    end;
    k := !k + 2
  done;
  let raw_offsets = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    raw_offsets.(v + 1) <- raw_offsets.(v) + raw_degree.(v)
  done;
  let raw_targets = Array.make raw_offsets.(n) 0 in
  let cursor = Array.copy raw_offsets in
  k := 0;
  while !k < len do
    let u = flat.(!k) and v = flat.(!k + 1) in
    if u <> v then begin
      raw_targets.(cursor.(u)) <- v;
      cursor.(u) <- cursor.(u) + 1;
      raw_targets.(cursor.(v)) <- u;
      cursor.(v) <- cursor.(v) + 1
    end;
    k := !k + 2
  done;
  let offsets = ba_create (n + 1) in
  let write = ref 0 in
  for v = 0 to n - 1 do
    let lo = raw_offsets.(v) and hi = raw_offsets.(v + 1) in
    sort_slice raw_targets lo hi;
    offsets.{v} <- !write;
    (* In-place compaction is safe: the write cursor never overtakes the
       read cursor ([!write <= lo <= k] throughout). *)
    for k = lo to hi - 1 do
      let w = raw_targets.(k) in
      if k = lo || raw_targets.(k - 1) <> w then begin
        raw_targets.(!write) <- w;
        incr write
      end
    done
  done;
  offsets.{n} <- !write;
  let targets = ba_create !write in
  for k = 0 to !write - 1 do
    targets.{k} <- raw_targets.(k)
  done;
  { n; m = !write / 2; epoch = 0; offsets; targets; delta = None }

let of_edges ~n edges =
  let len = 2 * Array.length edges in
  let flat = Array.make (max 1 len) 0 in
  Array.iteri
    (fun i (u, v) ->
      flat.(2 * i) <- u;
      flat.((2 * i) + 1) <- v)
    edges;
  of_flat_halves ~n ~len flat

let of_edge_list ~n edges = of_edges ~n (Array.of_list edges)

(* Adopt externally produced CSR arrays — typically views into an mmap'd
   snapshot.  One sequential validation pass keeps corrupt files from
   surfacing later as out-of-range vertex ids deep inside BFS or routing;
   for a mapped file it merely pages the data in once, in order. *)
let of_bigarrays ?(validate = true) ~n ~offsets ~targets () =
  if n < 0 then Error "negative n"
  else if A1.dim offsets <> n + 1 then
    Error
      (Printf.sprintf "offsets length %d, expected n+1 = %d" (A1.dim offsets) (n + 1))
  else begin
    let half = A1.dim targets in
    if half land 1 <> 0 then Error (Printf.sprintf "odd half-edge count %d" half)
    else if n = 0 && half > 0 then Error "targets nonempty on empty graph"
    else begin
      let err = ref None in
      if offsets.{0} <> 0 then err := Some "offsets must start at 0";
      (* The content scans fault every page of a mapped snapshot into
         residency, so [~validate:false] keeps only the O(1) endpoint
         checks (see the interface for why that stays memory-safe). *)
      if validate then begin
        let v = ref 0 in
        while !err = None && !v < n do
          if offsets.{!v + 1} < offsets.{!v} then
            err := Some (Printf.sprintf "offsets not monotone at vertex %d" !v);
          incr v
        done
      end;
      if !err = None && offsets.{n} <> half then
        err :=
          Some
            (Printf.sprintf "offsets end at %d, targets length %d" offsets.{n} half);
      if validate then begin
        let k = ref 0 in
        while !err = None && !k < half do
          let w = targets.{!k} in
          if w < 0 || w >= n then
            err := Some (Printf.sprintf "target %d out of range at index %d" w !k);
          incr k
        done
      end;
      match !err with
      | Some e -> Error ("Graph.of_bigarrays: " ^ e)
      | None -> Ok { n; m = half / 2; epoch = 0; offsets; targets; delta = None }
    end
  end

let offsets_ba t =
  if t.delta <> None then
    invalid_arg "Graph.offsets_ba: graph carries a live delta; compact it first";
  t.offsets

let targets_ba t =
  if t.delta <> None then
    invalid_arg "Graph.targets_ba: graph carries a live delta; compact it first";
  t.targets

let n t = t.n
let m t = t.m
let epoch t = t.epoch

let live t v =
  match t.delta with None -> true | Some d -> Bytes.get d.removed v = '\000'

let live_count t =
  match t.delta with
  | None -> t.n
  | Some d ->
      let c = ref 0 in
      for v = 0 to t.n - 1 do
        if Bytes.get d.removed v = '\000' then incr c
      done;
      !c

let edge_key n u v = if u < v then (u * n) + v else (v * n) + u

(* Is base target [w] visible from [v] under delta [d]?  [v] itself is
   assumed live. *)
let base_visible t d v w =
  Bytes.get d.removed w = '\000' && not (Hashtbl.mem d.dropped (edge_key t.n v w))

let degree t v =
  match t.delta with
  | None -> t.offsets.{v + 1} - t.offsets.{v}
  | Some d ->
      if Bytes.get d.removed v <> '\000' then 0
      else begin
        let c = ref (Array.length d.added.(v)) in
        for k = t.offsets.{v} to t.offsets.{v + 1} - 1 do
          if base_visible t d v t.targets.{k} then incr c
        done;
        !c
      end

let iter_neighbors t v f =
  match t.delta with
  | None ->
      for k = t.offsets.{v} to t.offsets.{v + 1} - 1 do
        f t.targets.{k}
      done
  | Some d ->
      if Bytes.get d.removed v = '\000' then begin
        (* Merge the filtered base slice with the sorted overlay; both
           streams ascend and never share an element (an [Add_edge] over
           a live base edge is a no-op), so the merged view ascends —
           the tie-break order every routing protocol relies on. *)
        let add = d.added.(v) in
        let na = Array.length add in
        let ai = ref 0 in
        for k = t.offsets.{v} to t.offsets.{v + 1} - 1 do
          let w = t.targets.{k} in
          if base_visible t d v w then begin
            while !ai < na && add.(!ai) < w do
              f add.(!ai);
              incr ai
            done;
            f w
          end
        done;
        while !ai < na do
          f add.(!ai);
          incr ai
        done
      end

let fold_neighbors t v ~init ~f =
  match t.delta with
  | None ->
      let acc = ref init in
      for k = t.offsets.{v} to t.offsets.{v + 1} - 1 do
        acc := f !acc t.targets.{k}
      done;
      !acc
  | Some _ ->
      let acc = ref init in
      iter_neighbors t v (fun w -> acc := f !acc w);
      !acc

exception Found_neighbor

let exists_neighbor t v pred =
  match t.delta with
  | None ->
      let rec scan k = k < t.offsets.{v + 1} && (pred t.targets.{k} || scan (k + 1)) in
      scan t.offsets.{v}
  | Some _ -> (
      try
        iter_neighbors t v (fun w -> if pred w then raise_notrace Found_neighbor);
        false
      with Found_neighbor -> true)

let neighbors t v =
  match t.delta with
  | None ->
      let lo = t.offsets.{v} in
      Array.init (t.offsets.{v + 1} - lo) (fun i -> t.targets.{lo + i})
  | Some _ ->
      let out = Array.make (degree t v) 0 in
      let i = ref 0 in
      iter_neighbors t v (fun w ->
          out.(!i) <- w;
          incr i);
      out

let base_has_edge t u v =
  let lo = ref t.offsets.{u} and hi = ref t.offsets.{u + 1} in
  let found = ref false in
  while !lo < !hi && not !found do
    let mid = (!lo + !hi) / 2 in
    let w = t.targets.{mid} in
    if w = v then found := true else if w < v then lo := mid + 1 else hi := mid
  done;
  !found

let mem_sorted arr x =
  let lo = ref 0 and hi = ref (Array.length arr) in
  let found = ref false in
  while !lo < !hi && not !found do
    let mid = (!lo + !hi) / 2 in
    let w = arr.(mid) in
    if w = x then found := true else if w < x then lo := mid + 1 else hi := mid
  done;
  !found

let has_edge t u v =
  match t.delta with
  | None -> base_has_edge t u v
  | Some d ->
      Bytes.get d.removed u = '\000'
      && Bytes.get d.removed v = '\000'
      && ((base_has_edge t u v && not (Hashtbl.mem d.dropped (edge_key t.n u v)))
         || mem_sorted d.added.(u) v)

let iter_edges t f =
  match t.delta with
  | None ->
      for u = 0 to t.n - 1 do
        for k = t.offsets.{u} to t.offsets.{u + 1} - 1 do
          let v = t.targets.{k} in
          if u < v then f u v
        done
      done
  | Some _ ->
      for u = 0 to t.n - 1 do
        iter_neighbors t u (fun v -> if u < v then f u v)
      done

let max_degree t =
  let best = ref 0 in
  for v = 0 to t.n - 1 do
    let d = degree t v in
    if d > !best then best := d
  done;
  !best

let avg_degree t = if t.n = 0 then 0.0 else 2.0 *. float_of_int t.m /. float_of_int t.n

(* ------------------------------------------------------------------ *)
(* Mutations: the copy-on-write write path.                            *)

type mutation =
  | Remove_vertex of int
  | Restore_vertex of int
  | Remove_edge of int * int
  | Add_edge of int * int

let fresh_delta n =
  { removed = Bytes.make n '\000'; dropped = Hashtbl.create 16; added = Array.make (max 1 n) [||] }

(* The overlay arrays are never mutated in place — slots are replaced
   wholesale — so a shallow copy of the outer array suffices and readers
   of the previous epoch keep a consistent view. *)
let copy_delta n = function
  | None -> fresh_delta n
  | Some d ->
      {
        removed = Bytes.copy d.removed;
        dropped = Hashtbl.copy d.dropped;
        added = Array.copy d.added;
      }

let insert_sorted arr x =
  let n = Array.length arr in
  let out = Array.make (n + 1) x in
  let i = ref 0 in
  while !i < n && arr.(!i) < x do
    out.(!i) <- arr.(!i);
    incr i
  done;
  Array.blit arr !i out (!i + 1) (n - !i);
  out

let remove_sorted arr x =
  if not (mem_sorted arr x) then arr
  else begin
    let n = Array.length arr in
    let out = Array.make (n - 1) 0 in
    let j = ref 0 in
    for i = 0 to n - 1 do
      if arr.(i) <> x then begin
        out.(!j) <- arr.(i);
        incr j
      end
    done;
    out
  end

let recount t =
  let total = ref 0 in
  for v = 0 to t.n - 1 do
    total := !total + degree t v
  done;
  !total / 2

let apply ?epoch t mutations =
  let n = t.n in
  let epoch = match epoch with Some e -> e | None -> t.epoch + 1 in
  let d = copy_delta n t.delta in
  let check what v =
    if v < 0 || v >= n then
      invalid_arg (Printf.sprintf "Graph.apply: %s vertex %d out of range [0, %d)" what v n)
  in
  let is_removed v = Bytes.get d.removed v <> '\000' in
  List.iter
    (fun mu ->
      match mu with
      | Remove_vertex v ->
          check "remove" v;
          if not (is_removed v) then begin
            (* Overlay edges of a departing vertex are stripped for good:
               a later [Restore_vertex] brings only its base edges back. *)
            Array.iter (fun u -> d.added.(u) <- remove_sorted d.added.(u) v) d.added.(v);
            d.added.(v) <- [||];
            Bytes.set d.removed v '\001'
          end
      | Restore_vertex v ->
          check "restore" v;
          Bytes.set d.removed v '\000'
      | Remove_edge (u, v) ->
          check "remove-edge" u;
          check "remove-edge" v;
          if u <> v && (not (is_removed u)) && not (is_removed v) then begin
            if mem_sorted d.added.(u) v then begin
              d.added.(u) <- remove_sorted d.added.(u) v;
              d.added.(v) <- remove_sorted d.added.(v) u
            end
            else if base_has_edge t u v then
              Hashtbl.replace d.dropped (edge_key n u v) ()
          end
      | Add_edge (u, v) ->
          check "add-edge" u;
          check "add-edge" v;
          if u = v then invalid_arg "Graph.apply: cannot add a self-loop";
          if is_removed u || is_removed v then
            invalid_arg "Graph.apply: cannot add an edge to a departed vertex";
          let key = edge_key n u v in
          if Hashtbl.mem d.dropped key then Hashtbl.remove d.dropped key
          else if (not (base_has_edge t u v)) && not (mem_sorted d.added.(u) v) then begin
            d.added.(u) <- insert_sorted d.added.(u) v;
            d.added.(v) <- insert_sorted d.added.(v) u
          end)
    mutations;
  let t' = { t with epoch; delta = Some d } in
  { t' with m = recount t' }

let compact t =
  match t.delta with
  | None -> t
  | Some _ ->
      let flat = Array.make (max 1 (2 * t.m)) 0 in
      let k = ref 0 in
      iter_edges t (fun u v ->
          flat.(!k) <- u;
          flat.(!k + 1) <- v;
          k := !k + 2);
      let g = of_flat_halves ~n:t.n ~len:!k flat in
      { g with epoch = t.epoch }
