module A1 = Bigarray.Array1

type int_bigarray = (int, Bigarray.int_elt, Bigarray.c_layout) A1.t

(* CSR arrays live in Bigarrays rather than heap [int array]s: the payload is
   outside the OCaml heap (the GC neither copies nor scans hundreds of
   millions of words), and a snapshot's CSR section can be [Unix.map_file]'d
   and traversed zero-copy through the exact same representation. *)
type t = {
  n : int;
  m : int;
  offsets : int_bigarray; (* length n+1 *)
  targets : int_bigarray; (* length 2m, neighbours of v at offsets.{v}..offsets.{v+1}-1 *)
}

let ba_create len = A1.create Bigarray.int Bigarray.c_layout len

(* Insertion sort of a slice of an int array; adjacency slices are short on
   sparse graphs, so this beats a general comparison sort. *)
let sort_slice arr lo hi =
  if hi - lo > 48 then begin
    (* Heavy hubs (power-law graphs have a few) get a comparison sort. *)
    let tmp = Array.sub arr lo (hi - lo) in
    Array.sort Int.compare tmp;
    Array.blit tmp 0 arr lo (hi - lo)
  end
  else
  for i = lo + 1 to hi - 1 do
    let x = arr.(i) in
    let j = ref (i - 1) in
    while !j >= lo && arr.(!j) > x do
      arr.(!j + 1) <- arr.(!j);
      decr j
    done;
    arr.(!j + 1) <- x
  done

(* Counting-sort CSR construction over an interleaved half-edge array
   [u0; v0; u1; v1; ...] — the native output format of the edge samplers'
   [Edge_buf], so generation feeds the graph build without materialising a
   boxed [(u, v) array].  Bucket raw half-edges per vertex, sort each short
   adjacency slice, compact away self-loops/duplicates in place, then copy
   the survivors into the final Bigarrays.  Scratch stays in heap [int
   array]s — it is transient and the final arrays are what must be
   Bigarray-shaped. *)
let of_flat_halves ~n ~len flat =
  if n < 0 then invalid_arg "Graph.of_edges: negative n";
  if len < 0 || len > Array.length flat then invalid_arg "Graph.of_flat_halves: bad length";
  if len land 1 <> 0 then invalid_arg "Graph.of_flat_halves: odd length";
  for k = 0 to len - 1 do
    let x = flat.(k) in
    if x < 0 || x >= n then invalid_arg "Graph.of_edges: endpoint out of range"
  done;
  let raw_degree = Array.make (n + 1) 0 in
  let k = ref 0 in
  while !k < len do
    let u = flat.(!k) and v = flat.(!k + 1) in
    if u <> v then begin
      raw_degree.(u) <- raw_degree.(u) + 1;
      raw_degree.(v) <- raw_degree.(v) + 1
    end;
    k := !k + 2
  done;
  let raw_offsets = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    raw_offsets.(v + 1) <- raw_offsets.(v) + raw_degree.(v)
  done;
  let raw_targets = Array.make raw_offsets.(n) 0 in
  let cursor = Array.copy raw_offsets in
  k := 0;
  while !k < len do
    let u = flat.(!k) and v = flat.(!k + 1) in
    if u <> v then begin
      raw_targets.(cursor.(u)) <- v;
      cursor.(u) <- cursor.(u) + 1;
      raw_targets.(cursor.(v)) <- u;
      cursor.(v) <- cursor.(v) + 1
    end;
    k := !k + 2
  done;
  let offsets = ba_create (n + 1) in
  let write = ref 0 in
  for v = 0 to n - 1 do
    let lo = raw_offsets.(v) and hi = raw_offsets.(v + 1) in
    sort_slice raw_targets lo hi;
    offsets.{v} <- !write;
    (* In-place compaction is safe: the write cursor never overtakes the
       read cursor ([!write <= lo <= k] throughout). *)
    for k = lo to hi - 1 do
      let w = raw_targets.(k) in
      if k = lo || raw_targets.(k - 1) <> w then begin
        raw_targets.(!write) <- w;
        incr write
      end
    done
  done;
  offsets.{n} <- !write;
  let targets = ba_create !write in
  for k = 0 to !write - 1 do
    targets.{k} <- raw_targets.(k)
  done;
  { n; m = !write / 2; offsets; targets }

let of_edges ~n edges =
  let len = 2 * Array.length edges in
  let flat = Array.make (max 1 len) 0 in
  Array.iteri
    (fun i (u, v) ->
      flat.(2 * i) <- u;
      flat.((2 * i) + 1) <- v)
    edges;
  of_flat_halves ~n ~len flat

let of_edge_list ~n edges = of_edges ~n (Array.of_list edges)

(* Adopt externally produced CSR arrays — typically views into an mmap'd
   snapshot.  One sequential validation pass keeps corrupt files from
   surfacing later as out-of-range vertex ids deep inside BFS or routing;
   for a mapped file it merely pages the data in once, in order. *)
let of_bigarrays ?(validate = true) ~n ~offsets ~targets () =
  if n < 0 then Error "negative n"
  else if A1.dim offsets <> n + 1 then
    Error
      (Printf.sprintf "offsets length %d, expected n+1 = %d" (A1.dim offsets) (n + 1))
  else begin
    let half = A1.dim targets in
    if half land 1 <> 0 then Error (Printf.sprintf "odd half-edge count %d" half)
    else if n = 0 && half > 0 then Error "targets nonempty on empty graph"
    else begin
      let err = ref None in
      if offsets.{0} <> 0 then err := Some "offsets must start at 0";
      (* The content scans fault every page of a mapped snapshot into
         residency, so [~validate:false] keeps only the O(1) endpoint
         checks (see the interface for why that stays memory-safe). *)
      if validate then begin
        let v = ref 0 in
        while !err = None && !v < n do
          if offsets.{!v + 1} < offsets.{!v} then
            err := Some (Printf.sprintf "offsets not monotone at vertex %d" !v);
          incr v
        done
      end;
      if !err = None && offsets.{n} <> half then
        err :=
          Some
            (Printf.sprintf "offsets end at %d, targets length %d" offsets.{n} half);
      if validate then begin
        let k = ref 0 in
        while !err = None && !k < half do
          let w = targets.{!k} in
          if w < 0 || w >= n then
            err := Some (Printf.sprintf "target %d out of range at index %d" w !k);
          incr k
        done
      end;
      match !err with
      | Some e -> Error ("Graph.of_bigarrays: " ^ e)
      | None -> Ok { n; m = half / 2; offsets; targets }
    end
  end

let offsets_ba t = t.offsets
let targets_ba t = t.targets

let n t = t.n
let m t = t.m

let degree t v = t.offsets.{v + 1} - t.offsets.{v}

let iter_neighbors t v f =
  for k = t.offsets.{v} to t.offsets.{v + 1} - 1 do
    f t.targets.{k}
  done

let fold_neighbors t v ~init ~f =
  let acc = ref init in
  for k = t.offsets.{v} to t.offsets.{v + 1} - 1 do
    acc := f !acc t.targets.{k}
  done;
  !acc

let exists_neighbor t v pred =
  let rec scan k = k < t.offsets.{v + 1} && (pred t.targets.{k} || scan (k + 1)) in
  scan t.offsets.{v}

let neighbors t v =
  let lo = t.offsets.{v} in
  Array.init (degree t v) (fun i -> t.targets.{lo + i})

let has_edge t u v =
  let lo = ref t.offsets.{u} and hi = ref t.offsets.{u + 1} in
  let found = ref false in
  while !lo < !hi && not !found do
    let mid = (!lo + !hi) / 2 in
    let w = t.targets.{mid} in
    if w = v then found := true else if w < v then lo := mid + 1 else hi := mid
  done;
  !found

let iter_edges t f =
  for u = 0 to t.n - 1 do
    for k = t.offsets.{u} to t.offsets.{u + 1} - 1 do
      let v = t.targets.{k} in
      if u < v then f u v
    done
  done

let max_degree t =
  let best = ref 0 in
  for v = 0 to t.n - 1 do
    let d = degree t v in
    if d > !best then best := d
  done;
  !best

let avg_degree t = if t.n = 0 then 0.0 else 2.0 *. float_of_int t.m /. float_of_int t.n
