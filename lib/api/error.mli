(** The shared error taxonomy of the v1 API.

    Every failure the system reports across a boundary — a daemon
    response line, a CLI diagnostic, a [bench diff] verdict — carries
    one of these codes.  The string codes are wire-stable (clients and
    CI scripts match on them) and each code maps to a fixed process
    exit status, so shell callers can branch on either.  Free-form
    detail goes in the [message]; the [code] is the contract. *)

type code =
  | Bad_request  (** malformed request: unparseable JSON, unknown flag, bad value *)
  | Unsupported_version
      (** the request declared an API or framing version this server
          does not speak; the message names the supported range *)
  | Unknown_instance  (** request names an instance the registry does not hold *)
  | Overloaded
      (** bounded queue or batch limit exceeded; retry later (the
          backpressure signal — never queued unboundedly) *)
  | Deadline  (** the request's deadline expired before completion *)
  | Draining  (** the server is shutting down and refuses new work *)
  | Io  (** a file could not be read, written or parsed *)
  | Usage  (** command line misuse *)
  | Incomparable
      (** two artifacts cannot be diffed (e.g. bench reports recorded
          at different job counts) *)
  | Regression  (** a bench gate tripped: measured regression beyond threshold *)
  | Internal  (** unexpected exception; a bug, not a caller error *)

val all_codes : code list

val code_string : code -> string
(** Stable kebab-case wire code, e.g. ["overloaded"], ["deadline"],
    ["perf-regression"].  Pinned by tests — changing one is a protocol
    break. *)

val code_of_string : string -> code option

val exit_code : code -> int
(** Fixed process exit status per code.  [Regression] is 1 (a gate
    verdict), caller errors ([Usage], [Io], [Incomparable],
    [Bad_request], [Unsupported_version], [Unknown_instance]) are 2,
    transient server-side conditions ([Overloaded], [Deadline],
    [Draining]) are 75 (EX_TEMPFAIL: retryable), [Internal] is 70
    (EX_SOFTWARE). *)

type t = { code : code; message : string }

val make : code -> ('a, unit, string, t) format4 -> 'a
(** [make code fmt ...] builds an error with a formatted message. *)

val to_string : t -> string
(** ["error [<code>] <message>"] — the one human-readable spelling,
    used verbatim by the CLIs on stderr. *)

val to_json : t -> Obs.Export.json
(** [{"code": <code_string>, "message": <message>}]. *)

val of_json : Obs.Export.json -> (t, string) result
