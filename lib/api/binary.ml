module J = Obs.Export

let magic = '\xB1'
let version = 1
let max_frame_bytes = 16 * 1024 * 1024

(* --- varints ----------------------------------------------------------- *)

let add_varint buf n =
  (* Unsigned LEB128 over the non-negative int [n]. *)
  let n = ref n in
  let continue = ref true in
  while !continue do
    let low = !n land 0x7f in
    n := !n lsr 7;
    if !n = 0 then (
      Buffer.add_char buf (Char.chr low);
      continue := false)
    else Buffer.add_char buf (Char.chr (low lor 0x80))
  done

let zigzag n = (n lsl 1) lxor (n asr (Sys.int_size - 1))
let unzigzag n = (n lsr 1) lxor (-(n land 1))

exception Truncated
exception Malformed of string

(* [read_varint s pos limit] returns [(value, next_pos)]; raises
   [Truncated] when the buffer ends mid-varint and [Malformed] on a
   varint wider than an OCaml int. *)
let read_varint s pos limit =
  let v = ref 0 and shift = ref 0 and pos = ref pos and fin = ref (-1) in
  while !fin < 0 do
    if !pos >= limit then raise Truncated;
    let b = Char.code s.[!pos] in
    incr pos;
    if !shift >= Sys.int_size then raise (Malformed "varint overflow");
    v := !v lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    if b land 0x80 = 0 then fin := !pos
  done;
  (!v, !fin)

(* --- payload encoding -------------------------------------------------- *)

let add_string buf s =
  add_varint buf (String.length s);
  Buffer.add_string buf s

let rec add_json buf (j : J.json) =
  match j with
  | J.Null -> Buffer.add_char buf '\x00'
  | J.Bool true -> Buffer.add_char buf '\x01'
  | J.Bool false -> Buffer.add_char buf '\x02'
  | J.Int n ->
      Buffer.add_char buf '\x03';
      add_varint buf (zigzag n)
  | J.Float f ->
      Buffer.add_char buf '\x04';
      let bits = Int64.bits_of_float f in
      for i = 0 to 7 do
        Buffer.add_char buf
          (Char.chr (Int64.to_int (Int64.shift_right_logical bits (8 * i)) land 0xff))
      done
  | J.Str s ->
      Buffer.add_char buf '\x05';
      add_string buf s
  | J.Arr items ->
      Buffer.add_char buf '\x06';
      add_varint buf (List.length items);
      List.iter (add_json buf) items
  | J.Obj fields ->
      Buffer.add_char buf '\x07';
      add_varint buf (List.length fields);
      List.iter
        (fun (k, v) ->
          add_string buf k;
          add_json buf v)
        fields

let encode_json j =
  let buf = Buffer.create 256 in
  add_json buf j;
  Buffer.contents buf

let read_string s pos limit =
  let n, pos = read_varint s pos limit in
  if n < 0 || pos + n > limit then raise Truncated;
  (String.sub s pos n, pos + n)

let rec read_json s pos limit =
  if pos >= limit then raise Truncated;
  let tag = Char.code s.[pos] in
  let pos = pos + 1 in
  match tag with
  | 0 -> (J.Null, pos)
  | 1 -> (J.Bool true, pos)
  | 2 -> (J.Bool false, pos)
  | 3 ->
      let v, pos = read_varint s pos limit in
      (J.Int (unzigzag v), pos)
  | 4 ->
      if pos + 8 > limit then raise Truncated;
      let bits = ref 0L in
      for i = 7 downto 0 do
        bits :=
          Int64.logor
            (Int64.shift_left !bits 8)
            (Int64.of_int (Char.code s.[pos + i]))
      done;
      (J.Float (Int64.float_of_bits !bits), pos + 8)
  | 5 ->
      let v, pos = read_string s pos limit in
      (J.Str v, pos)
  | 6 ->
      let n, pos = read_varint s pos limit in
      if n < 0 then raise (Malformed "negative array length");
      let pos = ref pos in
      let items = ref [] in
      for _ = 1 to n do
        let item, p = read_json s !pos limit in
        items := item :: !items;
        pos := p
      done;
      (J.Arr (List.rev !items), !pos)
  | 7 ->
      let n, pos = read_varint s pos limit in
      if n < 0 then raise (Malformed "negative object length");
      let pos = ref pos in
      let fields = ref [] in
      for _ = 1 to n do
        let k, p = read_string s !pos limit in
        let v, p = read_json s p limit in
        fields := (k, v) :: !fields;
        pos := p
      done;
      (J.Obj (List.rev !fields), !pos)
  | t -> raise (Malformed (Printf.sprintf "unknown tag %d" t))

let decode_json payload =
  match read_json payload 0 (String.length payload) with
  | j, consumed ->
      if consumed <> String.length payload then
        Error
          (Printf.sprintf "trailing bytes: %d of %d consumed" consumed
             (String.length payload))
      else Ok j
  | exception Truncated -> Error "truncated payload"
  | exception Malformed msg -> Error msg

(* --- framing ----------------------------------------------------------- *)

let frame payload =
  let buf = Buffer.create (String.length payload + 8) in
  Buffer.add_char buf magic;
  Buffer.add_char buf (Char.chr version);
  add_varint buf (String.length payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

let request_frame e = frame (encode_json (V1.envelope_to_json e))
let reply_frame r = frame (encode_json (V1.reply_to_json r))

let decode_error what msg = Result.Error (Error.make Error.Bad_request "%s: %s" what msg)

let envelope_of_payload payload =
  match decode_json payload with
  | Error msg -> decode_error "binary request" msg
  | Ok j -> V1.envelope_of_json j

let reply_of_payload payload =
  match decode_json payload with
  | Error msg -> decode_error "binary reply" msg
  | Ok j -> V1.reply_of_json j

(* --- incremental parser ------------------------------------------------ *)

type parse_result =
  | Need
  | Frame of { payload : string; consumed : int }
  | Oversized of { declared : int; consumed : int }
  | Bad_version of int
  | Bad of string

let parse ?(max_len = max_frame_bytes) buf ~pos ~len =
  let limit = pos + len in
  if len < 1 then Need
  else if buf.[pos] <> magic then
    Bad (Printf.sprintf "bad magic byte 0x%02x" (Char.code buf.[pos]))
  else if len < 2 then Need
  else if Char.code buf.[pos + 1] <> version then
    Bad_version (Char.code buf.[pos + 1])
  else
    match read_varint buf (pos + 2) limit with
    | exception Truncated -> Need
    | exception Malformed msg -> Bad msg
    | declared, body_pos ->
        (* A 9-byte varint can set the sign bit of an OCaml int; a
           negative length would slip past both range checks below and
           blow up String.sub, so it is rejected as malformed (not
           Oversized — there is no payload to skip). *)
        if declared < 0 then Bad (Printf.sprintf "negative frame length %d" declared)
        else if declared > max_len then
          Oversized { declared; consumed = body_pos - pos }
        else if body_pos + declared > limit then Need
        else
          Frame
            {
              payload = String.sub buf body_pos declared;
              consumed = body_pos + declared - pos;
            }
