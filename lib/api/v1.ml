(* The single definition of route/sample/stats parameters: typed
   requests, the JSON wire codec used by the daemon, and the
   argument-list codec used by the CLIs.  Both codecs round-trip
   exactly (pinned by test/test_api.ml), and the flag tables below
   also generate the machine-readable schema dump, so parser, printer
   and documentation cannot drift apart. *)

module J = Obs.Export

let version = 1

type model =
  | Girg of Girg.Params.t
  | Hrg of Hyperbolic.Hrg.params
  | Kleinberg of Kleinberg.Lattice.params

type pair_pool = Any | Giant

type pairs_spec =
  | Pairs of (int * int) list
  | Drawn of { count : int; pair_seed : int; pool : pair_pool }

type request =
  | Load of { name : string; path : string }
  | Sample of { name : string; model : model; seed : int }
  | Route of {
      instance : string;
      source : int;
      target : int;
      protocol : Greedy_routing.Protocol.t;
      max_steps : int option;
    }
  | Route_batch of {
      instance : string;
      pairs : pairs_spec;
      protocol : Greedy_routing.Protocol.t;
      max_steps : int option;
    }
  | Stats of { instance : string }
  | Gen_shard of {
      params : Girg.Params.t;
      seed : int;
      shards : int;
      shard : int;
      out : string;
    }
  | Merge_shards of { name : string; spills : string list }
  | Snapshot of { instance : string; out : string }
  | Mutate of { instance : string; ops : Girg.Mutate.op list; seed : int }
  | Churn of { instance : string; config : Experiments.Churn.config }
  | Health
  | Server_stats
  | Drain

(* Distributed-trace context: the client names the trace and the span
   id its own record will carry, so the server's smallworld.trace.v1
   record can hang under it (see Obs.Profile) with no clock agreement. *)
type trace_ctx = { trace_id : string; parent_span : int }

type envelope = {
  id : int option;
  deadline_ms : int option;
  trace : trace_ctx option;
  request : request;
}

let envelope ?id ?deadline_ms ?trace request = { id; deadline_ms; trace; request }

type instance_info = { name : string; params : string; vertices : int; edges : int }

type route_reply = {
  source : int;
  target : int;
  status : Greedy_routing.Outcome.status;
  steps : int;
  visited : int;
  shortest : int option;
  text : string;
}

type stats_reply = {
  params : string;
  vertices : int;
  edges : int;
  avg_degree : float;
  max_degree : int;
  components : int;
  giant : int;
}

type spill_info = {
  sp_path : string;
  sp_shard : int;
  sp_shards : int;
  sp_vertices : int;
  sp_edges : int;
}

type snapshot_info = {
  sn_path : string;
  sn_bytes : int;
  sn_vertices : int;
  sn_edges : int;
}

type mutate_reply = {
  mu_name : string;
  mu_epoch : int;
  mu_generation : int;
  mu_live : int;
  mu_vertices : int;
  mu_edges : int;
  mu_applied : int;
}

type churn_reply = {
  ch_name : string;
  ch_scenario : Experiments.Churn.scenario;
  ch_generation : int;
  ch_rows : Experiments.Churn.epoch_row list;
}

type health_reply = {
  draining : bool;
  instances : string list;
  counters : (string * int) list;
}

type stage_latency = {
  stage : string;
  s_count : int;
  p50 : float;
  p90 : float;
  p99 : float;
  p999 : float;
  s_max : float;
}

type server_stats_reply = {
  uptime_s : float;
  s_draining : bool;
  obs_live : bool;
  s_counters : (string * int) list;
  gauges : (string * float) list;
  stages : stage_latency list;
  prometheus : string;
}

type response =
  | Loaded of instance_info
  | Sampled of instance_info
  | Routed of route_reply
  | Routed_batch of route_reply list
  | Stats_reply of stats_reply
  | Spilled of spill_info
  | Merged of instance_info
  | Snapshotted of snapshot_info
  | Mutated of mutate_reply
  | Churned of churn_reply
  | Health_reply of health_reply
  | Server_stats_reply of server_stats_reply
  | Drain_ack
  | Failed of Error.t

type reply = { reply_id : int option; response : response }

(* ------------------------------------------------------------------ *)
(* Shared string conversions                                           *)

let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e

let err_bad fmt =
  Printf.ksprintf (fun message -> Error { Error.code = Error.Bad_request; message }) fmt

let protocol_to_string = Greedy_routing.Protocol.name

let protocol_of_string s =
  match String.lowercase_ascii s with
  | "greedy" -> Ok Greedy_routing.Protocol.Greedy
  | "phi-dfs" | "dfs" -> Ok Greedy_routing.Protocol.Patch_dfs
  | "history" -> Ok Greedy_routing.Protocol.Patch_history
  | "gravity-pressure" | "gp" -> Ok Greedy_routing.Protocol.Gravity_pressure
  | other ->
      err_bad "unknown protocol %S (greedy | phi-dfs | history | gravity-pressure)" other

let status_to_string = Greedy_routing.Outcome.status_to_string

let status_of_string s =
  List.find_opt
    (fun st -> Greedy_routing.Outcome.status_to_string st = s)
    [
      Greedy_routing.Outcome.Delivered;
      Greedy_routing.Outcome.Dead_end;
      Greedy_routing.Outcome.Exhausted;
      Greedy_routing.Outcome.Cutoff;
    ]

let alpha_of_string s =
  match String.lowercase_ascii s with
  | "inf" | "infinity" -> Ok Girg.Params.Infinite
  | s -> (
      match float_of_string_opt s with
      | Some a -> Ok (Girg.Params.Finite a)
      | None -> err_bad "bad --alpha %S (a float > 1, or 'inf')" s)

let parse_jobs s =
  match int_of_string_opt s with
  | Some j when j >= 0 -> Ok j
  | Some _ | None -> err_bad "--jobs expects a non-negative integer (0 = all cores)"

(* Shortest decimal that parses back to the same double (the JSON
   emitter uses the same trick), so argument lists round-trip floats. *)
let float_arg f =
  if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.0f" f
  else
    let s = Printf.sprintf "%.9g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

(* Shared by both codecs: a shard index names one band of [0, shards). *)
let check_shard_range ~what ~shards ~shard =
  if shards < 1 then err_bad "%s: shards must be >= 1, got %d" what shards
  else if shard < 0 || shard >= shards then
    err_bad "%s: shard must be in [0, %d), got %d" what shards shard
  else Ok ()

let pool_to_string = function Any -> "any" | Giant -> "giant"

let pool_of_string = function
  | "any" -> Ok Any
  | "giant" -> Ok Giant
  | s -> err_bad "bad --pool %S (any | giant)" s

(* ------------------------------------------------------------------ *)
(* JSON wire codec                                                     *)

let model_fields = function
  | Girg p ->
      [
        ("model", J.Str "girg");
        ("n", J.Int p.Girg.Params.n);
        ("dim", J.Int p.dim);
        ("beta", J.Float p.beta);
        ("w_min", J.Float p.w_min);
        ( "alpha",
          match p.alpha with
          | Girg.Params.Infinite -> J.Str "inf"
          | Girg.Params.Finite a -> J.Float a );
        ("c", J.Float p.c);
        ("norm", J.Str (Girg.Params.norm_to_string p.norm));
        ("poisson", J.Bool p.poisson_count);
      ]
  | Hrg p ->
      [
        ("model", J.Str "hrg");
        ("n", J.Int p.Hyperbolic.Hrg.n);
        ("alpha_h", J.Float p.alpha_h);
        ("radius_c", J.Float p.radius_c);
        ("temperature", J.Float p.temperature);
      ]
  | Kleinberg p ->
      [
        ("model", J.Str "kleinberg");
        ("side", J.Int p.Kleinberg.Lattice.side);
        ("long_range", J.Int p.long_range);
        ("exponent", J.Float p.exponent);
      ]

let pairs_fields = function
  | Pairs ps ->
      [ ("pairs", J.Arr (List.map (fun (s, t) -> J.Arr [ J.Int s; J.Int t ]) ps)) ]
  | Drawn { count; pair_seed; pool } ->
      [
        ("count", J.Int count);
        ("pair_seed", J.Int pair_seed);
        ("pair_pool", J.Str (pool_to_string pool));
      ]

(* Field accessors over a parsed JSON object. *)

let jint = function J.Int i -> Some i | _ -> None

let jfloat = function
  | J.Float f -> Some f
  | J.Int i -> Some (float_of_int i)
  | _ -> None

let jstr = function J.Str s -> Some s | _ -> None
let jbool = function J.Bool b -> Some b | _ -> None

let req_field ~what name conv j =
  match J.member name j with
  | Some v -> (
      match conv v with
      | Some x -> Ok x
      | None -> err_bad "field %S of a %s request has the wrong type" name what)
  | None -> err_bad "%s request is missing field %S" what name

let opt_field ~what name conv j =
  match J.member name j with
  | None -> Ok None
  | Some v -> (
      match conv v with
      | Some x -> Ok (Some x)
      | None -> err_bad "field %S of a %s request has the wrong type" name what)

let validate_girg ~what p =
  match Girg.Params.validate p with
  | Ok p -> Ok p
  | Error m -> err_bad "invalid girg parameters in %s request: %s" what m

let model_of_json ~what j =
  let* kind = req_field ~what "model" jstr j in
  match kind with
  | "girg" ->
      let dflt = Girg.Params.default in
      let* n = req_field ~what "n" jint j in
      let* dim = opt_field ~what "dim" jint j in
      let* beta = opt_field ~what "beta" jfloat j in
      let* w_min = opt_field ~what "w_min" jfloat j in
      let* c = opt_field ~what "c" jfloat j in
      let* alpha =
        match J.member "alpha" j with
        | None -> Ok dflt.Girg.Params.alpha
        | Some (J.Str s) -> alpha_of_string s
        | Some v -> (
            match jfloat v with
            | Some a -> Ok (Girg.Params.Finite a)
            | None -> err_bad "field \"alpha\" of a %s request has the wrong type" what)
      in
      let* norm =
        match J.member "norm" j with
        | None -> Ok dflt.Girg.Params.norm
        | Some (J.Str s) -> (
            match Girg.Params.norm_of_string s with
            | Some n -> Ok n
            | None -> err_bad "bad norm %S (linf | l2 | l1)" s)
        | Some _ -> err_bad "field \"norm\" of a %s request has the wrong type" what
      in
      let* poisson = opt_field ~what "poisson" jbool j in
      let* p =
        validate_girg ~what
          {
            Girg.Params.n;
            dim = Option.value dim ~default:dflt.Girg.Params.dim;
            beta = Option.value beta ~default:dflt.Girg.Params.beta;
            w_min = Option.value w_min ~default:dflt.Girg.Params.w_min;
            alpha;
            c = Option.value c ~default:dflt.Girg.Params.c;
            norm;
            poisson_count = Option.value poisson ~default:true;
          }
      in
      Ok (Girg p)
  | "hrg" ->
      let* n = req_field ~what "n" jint j in
      let* alpha_h = opt_field ~what "alpha_h" jfloat j in
      let* radius_c = opt_field ~what "radius_c" jfloat j in
      let* temperature = opt_field ~what "temperature" jfloat j in
      (match
         Hyperbolic.Hrg.make ?alpha_h ?radius_c ?temperature ~n ()
       with
      | p -> Ok (Hrg p)
      | exception Invalid_argument m -> err_bad "invalid hrg parameters: %s" m)
  | "kleinberg" ->
      let* side = req_field ~what "side" jint j in
      let* long_range = opt_field ~what "long_range" jint j in
      let* exponent = opt_field ~what "exponent" jfloat j in
      (match Kleinberg.Lattice.make ?long_range ?exponent ~side () with
      | p -> Ok (Kleinberg p)
      | exception Invalid_argument m -> err_bad "invalid kleinberg parameters: %s" m)
  | other -> err_bad "unknown model %S (girg | hrg | kleinberg)" other

let pairs_of_json ~what j =
  match J.member "pairs" j with
  | Some (J.Arr items) ->
      let rec go acc = function
        | [] -> Ok (Pairs (List.rev acc))
        | J.Arr [ s; t ] :: rest -> (
            match (jint s, jint t) with
            | Some s, Some t -> go ((s, t) :: acc) rest
            | _ -> err_bad "\"pairs\" entries must be [source, target] int pairs")
        | _ -> err_bad "\"pairs\" entries must be [source, target] int pairs"
      in
      go [] items
  | Some _ -> err_bad "field \"pairs\" of a %s request must be an array" what
  | None ->
      let* count = req_field ~what "count" jint j in
      let* pair_seed = opt_field ~what "pair_seed" jint j in
      let* pool =
        match J.member "pair_pool" j with
        | None -> Ok Giant
        | Some (J.Str s) -> pool_of_string s
        | Some _ -> err_bad "field \"pair_pool\" of a %s request has the wrong type" what
      in
      Ok (Drawn { count; pair_seed = Option.value pair_seed ~default:0; pool })

let protocol_of_json ~what j =
  match J.member "protocol" j with
  | None -> Ok Greedy_routing.Protocol.Greedy
  | Some (J.Str s) -> protocol_of_string s
  | Some _ -> err_bad "field \"protocol\" of a %s request has the wrong type" what

let route_reply_to_json (r : route_reply) =
  J.Obj
    [
      ("source", J.Int r.source);
      ("target", J.Int r.target);
      ("status", J.Str (status_to_string r.status));
      ("steps", J.Int r.steps);
      ("visited", J.Int r.visited);
      ("shortest", match r.shortest with Some d -> J.Int d | None -> J.Null);
      ("text", J.Str r.text);
    ]

let instance_info_to_json (i : instance_info) =
  J.Obj
    [
      ("name", J.Str i.name);
      ("params", J.Str i.params);
      ("vertices", J.Int i.vertices);
      ("edges", J.Int i.edges);
    ]

let churn_row_to_json (r : Experiments.Churn.epoch_row) =
  J.Obj
    [
      ("epoch", J.Int r.epoch);
      ("live", J.Int r.live);
      ("edges", J.Int r.edges);
      ("attempted", J.Int r.attempted);
      ("delivered", J.Int r.delivered);
      ("mean_steps", J.Float r.mean_steps);
      ("mean_stretch", J.Float r.mean_stretch);
    ]

let result_to_json = function
  | Loaded i | Sampled i | Merged i -> instance_info_to_json i
  | Spilled s ->
      J.Obj
        [
          ("path", J.Str s.sp_path);
          ("shard", J.Int s.sp_shard);
          ("shards", J.Int s.sp_shards);
          ("vertices", J.Int s.sp_vertices);
          ("edges", J.Int s.sp_edges);
        ]
  | Snapshotted s ->
      J.Obj
        [
          ("path", J.Str s.sn_path);
          ("bytes", J.Int s.sn_bytes);
          ("vertices", J.Int s.sn_vertices);
          ("edges", J.Int s.sn_edges);
        ]
  | Routed r -> route_reply_to_json r
  | Routed_batch rs -> J.Obj [ ("routes", J.Arr (List.map route_reply_to_json rs)) ]
  | Mutated m ->
      J.Obj
        [
          ("name", J.Str m.mu_name);
          ("epoch", J.Int m.mu_epoch);
          ("generation", J.Int m.mu_generation);
          ("live", J.Int m.mu_live);
          ("vertices", J.Int m.mu_vertices);
          ("edges", J.Int m.mu_edges);
          ("applied", J.Int m.mu_applied);
        ]
  | Churned c ->
      J.Obj
        [
          ("name", J.Str c.ch_name);
          ("scenario", J.Str (Experiments.Churn.scenario_to_string c.ch_scenario));
          ("generation", J.Int c.ch_generation);
          ("epochs", J.Arr (List.map churn_row_to_json c.ch_rows));
        ]
  | Stats_reply s ->
      J.Obj
        [
          ("params", J.Str s.params);
          ("vertices", J.Int s.vertices);
          ("edges", J.Int s.edges);
          ("avg_degree", J.Float s.avg_degree);
          ("max_degree", J.Int s.max_degree);
          ("components", J.Int s.components);
          ("giant", J.Int s.giant);
        ]
  | Health_reply h ->
      J.Obj
        [
          ("draining", J.Bool h.draining);
          ("instances", J.Arr (List.map (fun n -> J.Str n) h.instances));
          ("counters", J.Obj (List.map (fun (k, v) -> (k, J.Int v)) h.counters));
        ]
  | Server_stats_reply s ->
      let stage_json st =
        J.Obj
          [
            ("stage", J.Str st.stage);
            ("count", J.Int st.s_count);
            ("p50", J.Float st.p50);
            ("p90", J.Float st.p90);
            ("p99", J.Float st.p99);
            ("p999", J.Float st.p999);
            ("max", J.Float st.s_max);
          ]
      in
      J.Obj
        [
          ("uptime_s", J.Float s.uptime_s);
          ("draining", J.Bool s.s_draining);
          ("obs_live", J.Bool s.obs_live);
          ("counters", J.Obj (List.map (fun (k, v) -> (k, J.Int v)) s.s_counters));
          ("gauges", J.Obj (List.map (fun (k, v) -> (k, J.Float v)) s.gauges));
          ("stages", J.Arr (List.map stage_json s.stages));
          ("prometheus", J.Str s.prometheus);
        ]
  | Drain_ack -> J.Obj [ ("draining", J.Bool true) ]
  | Failed _ -> J.Null

let op_of_response = function
  | Loaded _ -> "load"
  | Sampled _ -> "sample"
  | Routed _ -> "route"
  | Routed_batch _ -> "route_batch"
  | Stats_reply _ -> "stats"
  | Spilled _ -> "gen_shard"
  | Merged _ -> "merge_shards"
  | Snapshotted _ -> "snapshot"
  | Mutated _ -> "mutate"
  | Churned _ -> "churn"
  | Health_reply _ -> "health"
  | Server_stats_reply _ -> "stats-server"
  | Drain_ack -> "drain"
  | Failed _ -> "error"

let reply_to_json r =
  let id = match r.reply_id with Some i -> [ ("id", J.Int i) ] | None -> [] in
  match r.response with
  | Failed e ->
      J.Obj ([ ("v", J.Int version) ] @ id @ [ ("ok", J.Bool false); ("error", Error.to_json e) ])
  | resp ->
      J.Obj
        ([ ("v", J.Int version) ] @ id
        @ [
            ("ok", J.Bool true);
            ("op", J.Str (op_of_response resp));
            ("result", result_to_json resp);
          ])

let route_reply_of_json ~what j =
  let* source = req_field ~what "source" jint j in
  let* target = req_field ~what "target" jint j in
  let* status_s = req_field ~what "status" jstr j in
  let* status =
    match status_of_string status_s with
    | Some s -> Ok s
    | None -> err_bad "unknown route status %S" status_s
  in
  let* steps = req_field ~what "steps" jint j in
  let* visited = req_field ~what "visited" jint j in
  let* shortest =
    match J.member "shortest" j with
    | Some J.Null | None -> Ok None
    | Some v -> (
        match jint v with
        | Some d -> Ok (Some d)
        | None -> err_bad "field \"shortest\" has the wrong type")
  in
  let* text = req_field ~what "text" jstr j in
  Ok { source; target; status; steps; visited; shortest; text }

let instance_info_of_json ~what j =
  let* name = req_field ~what "name" jstr j in
  let* params = req_field ~what "params" jstr j in
  let* vertices = req_field ~what "vertices" jint j in
  let* edges = req_field ~what "edges" jint j in
  Ok ({ name; params; vertices; edges } : instance_info)

let reply_of_json j =
  let* id = opt_field ~what:"reply" "id" jint j in
  let* ok = req_field ~what:"reply" "ok" jbool j in
  if not ok then
    match J.member "error" j with
    | Some e -> (
        match Error.of_json e with
        | Ok e -> Ok { reply_id = id; response = Failed e }
        | Error m -> err_bad "bad error object in reply: %s" m)
    | None -> err_bad "failed reply is missing field \"error\""
  else
    let* op = req_field ~what:"reply" "op" jstr j in
    let* result =
      match J.member "result" j with
      | Some r -> Ok r
      | None -> err_bad "ok reply is missing field \"result\""
    in
    let what = "reply:" ^ op in
    let* response =
      match op with
      | "load" ->
          let* i = instance_info_of_json ~what result in
          Ok (Loaded i)
      | "sample" ->
          let* i = instance_info_of_json ~what result in
          Ok (Sampled i)
      | "gen_shard" ->
          let* sp_path = req_field ~what "path" jstr result in
          let* sp_shard = req_field ~what "shard" jint result in
          let* sp_shards = req_field ~what "shards" jint result in
          let* sp_vertices = req_field ~what "vertices" jint result in
          let* sp_edges = req_field ~what "edges" jint result in
          Ok (Spilled { sp_path; sp_shard; sp_shards; sp_vertices; sp_edges })
      | "merge_shards" ->
          let* i = instance_info_of_json ~what result in
          Ok (Merged i)
      | "snapshot" ->
          let* sn_path = req_field ~what "path" jstr result in
          let* sn_bytes = req_field ~what "bytes" jint result in
          let* sn_vertices = req_field ~what "vertices" jint result in
          let* sn_edges = req_field ~what "edges" jint result in
          Ok (Snapshotted { sn_path; sn_bytes; sn_vertices; sn_edges })
      | "mutate" ->
          let* mu_name = req_field ~what "name" jstr result in
          let* mu_epoch = req_field ~what "epoch" jint result in
          let* mu_generation = req_field ~what "generation" jint result in
          let* mu_live = req_field ~what "live" jint result in
          let* mu_vertices = req_field ~what "vertices" jint result in
          let* mu_edges = req_field ~what "edges" jint result in
          let* mu_applied = req_field ~what "applied" jint result in
          Ok
            (Mutated
               { mu_name; mu_epoch; mu_generation; mu_live; mu_vertices; mu_edges; mu_applied })
      | "churn" ->
          let* ch_name = req_field ~what "name" jstr result in
          let* scenario_s = req_field ~what "scenario" jstr result in
          let* ch_scenario =
            match Experiments.Churn.scenario_of_string scenario_s with
            | Ok s -> Ok s
            | Error m -> err_bad "%s" m
          in
          let* ch_generation = req_field ~what "generation" jint result in
          (* Means over zero delivered runs serialise as null (nan). *)
          let row_of_json j =
            let nullable_float name =
              match J.member name j with
              | Some J.Null | None -> Ok nan
              | Some v -> (
                  match jfloat v with
                  | Some f -> Ok f
                  | None -> err_bad "churn field %S must be a number or null" name)
            in
            let* epoch = req_field ~what "epoch" jint j in
            let* live = req_field ~what "live" jint j in
            let* edges = req_field ~what "edges" jint j in
            let* attempted = req_field ~what "attempted" jint j in
            let* delivered = req_field ~what "delivered" jint j in
            let* mean_steps = nullable_float "mean_steps" in
            let* mean_stretch = nullable_float "mean_stretch" in
            Ok
              ({ epoch; live; edges; attempted; delivered; mean_steps; mean_stretch }
                : Experiments.Churn.epoch_row)
          in
          let* ch_rows =
            match J.member "epochs" result with
            | Some (J.Arr items) ->
                let rec go acc = function
                  | [] -> Ok (List.rev acc)
                  | r :: rest ->
                      let* r = row_of_json r in
                      go (r :: acc) rest
                in
                go [] items
            | _ -> err_bad "churn reply is missing array field \"epochs\""
          in
          Ok (Churned { ch_name; ch_scenario; ch_generation; ch_rows })
      | "route" ->
          let* r = route_reply_of_json ~what result in
          Ok (Routed r)
      | "route_batch" -> (
          match J.member "routes" result with
          | Some (J.Arr items) ->
              let rec go acc = function
                | [] -> Ok (Routed_batch (List.rev acc))
                | r :: rest ->
                    let* r = route_reply_of_json ~what r in
                    go (r :: acc) rest
              in
              go [] items
          | _ -> err_bad "route_batch reply is missing array field \"routes\"")
      | "stats" ->
          let* params = req_field ~what "params" jstr result in
          let* vertices = req_field ~what "vertices" jint result in
          let* edges = req_field ~what "edges" jint result in
          let* avg_degree = req_field ~what "avg_degree" jfloat result in
          let* max_degree = req_field ~what "max_degree" jint result in
          let* components = req_field ~what "components" jint result in
          let* giant = req_field ~what "giant" jint result in
          Ok
            (Stats_reply
               { params; vertices; edges; avg_degree; max_degree; components; giant })
      | "health" ->
          let* draining = req_field ~what "draining" jbool result in
          let* instances =
            match J.member "instances" result with
            | Some (J.Arr items) ->
                let rec go acc = function
                  | [] -> Ok (List.rev acc)
                  | J.Str s :: rest -> go (s :: acc) rest
                  | _ -> err_bad "health \"instances\" must be strings"
                in
                go [] items
            | _ -> err_bad "health reply is missing array field \"instances\""
          in
          let* counters =
            match J.member "counters" result with
            | Some (J.Obj fields) ->
                let rec go acc = function
                  | [] -> Ok (List.rev acc)
                  | (k, J.Int v) :: rest -> go ((k, v) :: acc) rest
                  | (k, _) :: _ -> err_bad "health counter %S must be an int" k
                in
                go [] fields
            | _ -> err_bad "health reply is missing object field \"counters\""
          in
          Ok (Health_reply { draining; instances; counters })
      | "stats-server" ->
          let* uptime_s = req_field ~what "uptime_s" jfloat result in
          let* s_draining = req_field ~what "draining" jbool result in
          let* obs_live = req_field ~what "obs_live" jbool result in
          let int_map name =
            match J.member name result with
            | Some (J.Obj fields) ->
                let rec go acc = function
                  | [] -> Ok (List.rev acc)
                  | (k, J.Int v) :: rest -> go ((k, v) :: acc) rest
                  | (k, _) :: _ -> err_bad "stats-server %s %S must be an int" name k
                in
                go [] fields
            | _ -> err_bad "stats-server reply is missing object field %S" name
          in
          let float_map name =
            match J.member name result with
            | Some (J.Obj fields) ->
                let rec go acc = function
                  | [] -> Ok (List.rev acc)
                  | (k, v) :: rest -> (
                      match jfloat v with
                      | Some f -> go ((k, f) :: acc) rest
                      | None -> err_bad "stats-server %s %S must be a number" name k)
                in
                go [] fields
            | _ -> err_bad "stats-server reply is missing object field %S" name
          in
          let* s_counters = int_map "counters" in
          let* gauges = float_map "gauges" in
          let stage_of_json j =
            let* stage = req_field ~what "stage" jstr j in
            let* s_count = req_field ~what "count" jint j in
            let* p50 = req_field ~what "p50" jfloat j in
            let* p90 = req_field ~what "p90" jfloat j in
            let* p99 = req_field ~what "p99" jfloat j in
            let* p999 = req_field ~what "p999" jfloat j in
            let* s_max = req_field ~what "max" jfloat j in
            Ok { stage; s_count; p50; p90; p99; p999; s_max }
          in
          let* stages =
            match J.member "stages" result with
            | Some (J.Arr items) ->
                let rec go acc = function
                  | [] -> Ok (List.rev acc)
                  | st :: rest ->
                      let* st = stage_of_json st in
                      go (st :: acc) rest
                in
                go [] items
            | _ -> err_bad "stats-server reply is missing array field \"stages\""
          in
          let* prometheus = req_field ~what "prometheus" jstr result in
          Ok
            (Server_stats_reply
               { uptime_s; s_draining; obs_live; s_counters; gauges; stages; prometheus })
      | "drain" -> Ok Drain_ack
      | other -> err_bad "unknown reply op %S" other
    in
    Ok { reply_id = id; response }

let reply_of_line line =
  match J.json_of_string line with
  | Error m -> err_bad "unparseable reply line: %s" m
  | Ok j -> reply_of_json j

let reply_line r = J.json_to_string (reply_to_json r)

(* ------------------------------------------------------------------ *)
(* Argument-list codec                                                 *)

type exec_opts = {
  output : string option;
  obs_out : string option;
  events_out : string option;
  trace_out : string option;
  jobs : int option;
}

let no_exec =
  { output = None; obs_out = None; events_out = None; trace_out = None; jobs = None }

(* Flag tables.  [aliases] are the deprecation shims: pre-v1 spellings
   that keep parsing but are never printed; the canonical flag is the
   only spelling [to_args], the schema and error messages use. *)

type fspec = {
  flag : string;
  als : string list;
  ftyp : string;  (* int | float | string | flag | ... for the schema *)
  freq : bool;
  fdefault : string option;
  fdoc : string;
}

let fld ?(als = []) ?(freq = false) ?fdefault ~ftyp ~fdoc flag =
  { flag; als; ftyp; freq; fdefault; fdoc }

let envelope_flags =
  [
    fld "--id" ~ftyp:"int" ~fdoc:"request id, echoed in the reply";
    fld "--deadline-ms" ~ftyp:"int"
      ~fdoc:"deadline in milliseconds from request receipt; expiry returns the \
             'deadline' error";
    fld "--trace-id" ~ftyp:"string"
      ~fdoc:"distributed-trace id: the server's smallworld.trace.v1 record joins \
             the trace of this id";
    fld "--trace-parent" ~ftyp:"int" ~fdefault:"0"
      ~fdoc:"span id (within --trace-id) the server's spans hang under";
  ]

let exec_flags =
  [
    fld "--output" ~als:[ "-o" ] ~ftyp:"string"
      ~fdoc:"CLI only: file the sampled instance is written to";
    fld "--obs-out" ~ftyp:"string" ~fdoc:"CLI only: write a JSONL run manifest";
    fld "--events-out" ~ftyp:"string"
      ~fdoc:"CLI only (route): write flight-recorder events (smallworld.events.v1)";
    fld "--trace-out" ~ftyp:"string"
      ~fdoc:"CLI only (route, route-batch): write this run's span tree as a \
             smallworld.trace.v1 record";
    fld "--jobs" ~als:[ "-j" ] ~ftyp:"int"
      ~fdoc:"worker domains (0 = all cores); overrides SMALLWORLD_JOBS";
  ]

let girg_flags =
  [
    fld "--n" ~als:[ "-n" ] ~ftyp:"int" ~fdefault:"10000" ~fdoc:"expected vertex count";
    fld "--dim" ~ftyp:"int" ~fdefault:"2" ~fdoc:"torus dimension";
    fld "--beta" ~ftyp:"float" ~fdefault:"2.5" ~fdoc:"power-law exponent in (2,3)";
    fld "--w-min" ~ftyp:"float" ~fdefault:"1" ~fdoc:"minimum weight";
    fld "--alpha" ~ftyp:"alpha" ~fdefault:"2" ~fdoc:"decay parameter (> 1) or 'inf'";
    fld "--c" ~als:[ "-c" ] ~ftyp:"float" ~fdefault:"0.25" ~fdoc:"edge probability constant";
    fld "--norm" ~ftyp:"norm" ~fdefault:"linf" ~fdoc:"torus norm: linf | l2 | l1";
    fld "--fixed-count" ~ftyp:"flag" ~fdoc:"exactly n vertices instead of Poisson(n)";
    fld "--shards" ~ftyp:"int" ~fdefault:"1"
      ~fdoc:"split edge generation into this many deterministic shards (with --spill-out)";
    fld "--shard" ~ftyp:"int" ~fdefault:"0" ~fdoc:"which shard to generate, in [0, --shards)";
    fld "--spill-out" ~ftyp:"string"
      ~fdoc:"write this shard's edges as a binary spill file instead of a full instance";
  ]

let hrg_flags =
  [
    fld "--n" ~als:[ "-n" ] ~ftyp:"int" ~fdefault:"10000" ~fdoc:"vertex count";
    fld "--alpha-h" ~ftyp:"float" ~fdefault:"0.75" ~fdoc:"radial dispersion in (1/2, 1)";
    fld "--radius-c" ~ftyp:"float" ~fdefault:"0" ~fdoc:"constant C in R = 2 ln n + C";
    fld "--temperature" ~ftyp:"float" ~fdefault:"0" ~fdoc:"T in [0, 1)";
  ]

let kleinberg_flags =
  [
    fld "--side" ~ftyp:"int" ~freq:true ~fdoc:"lattice side (side^2 vertices)";
    fld "--long-range" ~ftyp:"int" ~fdefault:"1" ~fdoc:"long-range contacts per vertex";
    fld "--exponent" ~ftyp:"float" ~fdefault:"2" ~fdoc:"decay exponent of the contact distribution";
  ]

let sample_common_flags =
  [
    fld "--name" ~ftyp:"string" ~fdoc:"registry name (CLI default: the --output path)";
    fld "--seed" ~ftyp:"int" ~fdefault:"42" ~fdoc:"random seed";
  ]

let route_flags =
  [
    fld "--instance" ~ftyp:"string" ~freq:true
      ~fdoc:"instance name (daemon) or file (CLI); also the positional argument";
    fld "--source" ~als:[ "-s" ] ~ftyp:"int" ~freq:true ~fdoc:"source vertex";
    fld "--target" ~als:[ "-t" ] ~ftyp:"int" ~freq:true ~fdoc:"target vertex";
    fld "--protocol" ~ftyp:"protocol" ~fdefault:"greedy"
      ~fdoc:"greedy | phi-dfs | history | gravity-pressure";
    fld "--max-steps" ~ftyp:"int" ~fdoc:"step budget (default: unlimited)";
  ]

let batch_flags =
  [
    fld "--instance" ~ftyp:"string" ~freq:true
      ~fdoc:"instance name (daemon) or file (CLI); also the positional argument";
    fld "--pairs" ~ftyp:"pairs" ~fdoc:"explicit pairs, e.g. 1:2,3:4 (excludes --count)";
    fld "--count" ~ftyp:"int" ~fdoc:"number of sampled pairs (excludes --pairs)";
    fld "--pair-seed" ~ftyp:"int" ~fdefault:"0" ~fdoc:"seed of the pair-sampling substream";
    fld "--pool" ~ftyp:"pool" ~fdefault:"giant" ~fdoc:"pair pool: giant | any";
    fld "--protocol" ~ftyp:"protocol" ~fdefault:"greedy"
      ~fdoc:"greedy | phi-dfs | history | gravity-pressure";
    fld "--max-steps" ~ftyp:"int" ~fdoc:"step budget (default: unlimited)";
  ]

let load_flags =
  [
    fld "--name" ~ftyp:"string" ~freq:true ~fdoc:"registry name for the loaded instance";
    fld "--path" ~ftyp:"string" ~freq:true
      ~fdoc:"instance file (smallworld-girg format); also the positional argument";
  ]

let stats_flags =
  [
    fld "--instance" ~ftyp:"string" ~freq:true
      ~fdoc:"instance name (daemon) or file (CLI); also the positional argument";
  ]

let merge_flags =
  [
    fld "--name" ~ftyp:"string" ~freq:true ~fdoc:"registry name for the merged instance";
    fld "--spills" ~ftyp:"paths" ~freq:true
      ~fdoc:"comma-separated spill files, one per shard index; also the positional \
             argument";
  ]

let snapshot_flags =
  [
    fld "--instance" ~ftyp:"string" ~freq:true
      ~fdoc:"instance name (daemon) or file (CLI); also the positional argument";
    fld "--out" ~ftyp:"string" ~freq:true
      ~fdoc:"where the v2 binary snapshot is written";
  ]

let mutate_flags =
  [
    fld "--instance" ~ftyp:"string" ~freq:true
      ~fdoc:"instance name (daemon) or file (CLI); also the positional argument";
    fld "--ops" ~ftyp:"mutations" ~freq:true
      ~fdoc:"comma-separated mutations: leave:V | rejoin:V | drop:U:V | resample:V";
    fld "--seed" ~ftyp:"int" ~fdefault:"42"
      ~fdoc:"seed of the resample substreams (replay-deterministic per epoch)";
  ]

let churn_flags =
  [
    fld "--instance" ~ftyp:"string" ~freq:true
      ~fdoc:"instance name (daemon) or file (CLI); also the positional argument";
    fld "--scenario" ~ftyp:"scenario" ~fdefault:"uniform"
      ~fdoc:"uniform | adversarial | milgram";
    fld "--epochs" ~ftyp:"int" ~fdefault:"3" ~fdoc:"mutation rounds after the baseline";
    fld "--events" ~ftyp:"int" ~fdefault:"16"
      ~fdoc:"structural events per epoch (ignored by milgram)";
    fld "--quit" ~ftyp:"float" ~fdefault:"0"
      ~fdoc:"per-hop quit probability (Milgram attrition), 0 disables";
    fld "--seed" ~ftyp:"int" ~fdefault:"42"
      ~fdoc:"seed of churn planning, resampling and quit coins";
    fld "--count" ~ftyp:"int" ~fdefault:"200" ~fdoc:"measurement pairs per epoch";
    fld "--pair-seed" ~ftyp:"int" ~fdefault:"0" ~fdoc:"seed of the pair-sampling substream";
    fld "--protocol" ~ftyp:"protocol" ~fdefault:"greedy"
      ~fdoc:"greedy | phi-dfs | history | gravity-pressure";
    fld "--max-steps" ~ftyp:"int" ~fdoc:"step budget (default: unlimited)";
  ]

let model_flag_table =
  [ ("girg", girg_flags); ("hrg", hrg_flags); ("kleinberg", kleinberg_flags) ]

(* Edit distance for the did-you-mean suggestion on unknown flags. *)
let levenshtein a b =
  let la = String.length a and lb = String.length b in
  let prev = Array.init (lb + 1) Fun.id and cur = Array.make (lb + 1) 0 in
  for i = 1 to la do
    cur.(0) <- i;
    for j = 1 to lb do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      cur.(j) <- min (min (cur.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
    done;
    Array.blit cur 0 prev 0 (lb + 1)
  done;
  prev.(lb)

let suggest ~known flag =
  let scored = List.map (fun f -> (levenshtein flag f.flag, f.flag)) known in
  match List.sort compare scored with
  | (d, best) :: _ when d <= max 2 (String.length flag / 3) ->
      Printf.sprintf " (did you mean %S?)" best
  | _ -> ""

let lookup_flag ~op known tok =
  match List.find_opt (fun f -> f.flag = tok || List.mem tok f.als) known with
  | Some f -> Ok f
  | None ->
      err_bad "unknown flag %S for %s%s" tok op (suggest ~known tok)

(* Scan tokens into (canonical flag -> raw value) plus positionals. *)
let scan ~op ~known tokens =
  let seen = Hashtbl.create 16 in
  let positionals = ref [] in
  let rec go = function
    | [] -> Ok ()
    | tok :: rest when String.length tok > 1 && tok.[0] = '-' ->
        let* f = lookup_flag ~op known tok in
        if f.ftyp = "flag" then begin
          Hashtbl.replace seen f.flag "true";
          go rest
        end
        else begin
          match rest with
          | v :: rest ->
              Hashtbl.replace seen f.flag v;
              go rest
          | [] -> err_bad "flag %s expects a value" f.flag
        end
    | tok :: rest ->
        positionals := tok :: !positionals;
        go rest
  in
  let* () = go tokens in
  Ok (seen, List.rev !positionals)

let get seen flag = Hashtbl.find_opt seen flag

let get_int ~op seen flag ~default =
  match get seen flag with
  | None -> Ok default
  | Some v -> (
      match int_of_string_opt v with
      | Some i -> Ok i
      | None -> err_bad "flag %s of %s expects an integer, got %S" flag op v)

let req_int ~op seen flag =
  match get seen flag with
  | None -> err_bad "%s requires %s" op flag
  | Some v -> (
      match int_of_string_opt v with
      | Some i -> Ok i
      | None -> err_bad "flag %s of %s expects an integer, got %S" flag op v)

let opt_int ~op seen flag =
  match get seen flag with
  | None -> Ok None
  | Some v -> (
      match int_of_string_opt v with
      | Some i -> Ok (Some i)
      | None -> err_bad "flag %s of %s expects an integer, got %S" flag op v)

let get_float ~op seen flag ~default =
  match get seen flag with
  | None -> Ok default
  | Some v -> (
      match float_of_string_opt v with
      | Some f -> Ok f
      | None -> err_bad "flag %s of %s expects a float, got %S" flag op v)

let parse_pairs ~op s =
  let parts = String.split_on_char ',' s in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | part :: rest -> (
        match String.index_opt part ':' with
        | Some i -> (
            let a = String.sub part 0 i
            and b = String.sub part (i + 1) (String.length part - i - 1) in
            match (int_of_string_opt a, int_of_string_opt b) with
            | Some s, Some t -> go ((s, t) :: acc) rest
            | _ -> err_bad "bad pair %S in --pairs of %s (want source:target)" part op)
        | None -> err_bad "bad pair %S in --pairs of %s (want source:target)" part op)
  in
  go [] parts

let exec_of_seen ~op seen =
  let* jobs =
    match get seen "--jobs" with
    | None -> Ok None
    | Some v ->
        let* j = parse_jobs v in
        Ok (Some j)
  in
  ignore op;
  Ok
    {
      output = get seen "--output";
      obs_out = get seen "--obs-out";
      events_out = get seen "--events-out";
      trace_out = get seen "--trace-out";
      jobs;
    }

let protocol_of_seen ~op seen =
  match get seen "--protocol" with
  | None -> Ok Greedy_routing.Protocol.Greedy
  | Some v ->
      let _ = op in
      protocol_of_string v

(* ------------------------------------------------------------------ *)
(* The op table                                                        *)

(* Argument-list fragments shared by the printers. *)
let fl flag v = [ flag; v ]
let opt_fl flag v = match v with Some v -> [ flag; v ] | None -> []

let girg_model_args (p : Girg.Params.t) =
  fl "--n" (string_of_int p.Girg.Params.n)
  @ fl "--dim" (string_of_int p.dim)
  @ fl "--beta" (float_arg p.beta)
  @ fl "--w-min" (float_arg p.w_min)
  @ fl "--alpha"
      (match p.alpha with
      | Girg.Params.Infinite -> "inf"
      | Girg.Params.Finite a -> float_arg a)
  @ fl "--c" (float_arg p.c)
  @ fl "--norm" (Girg.Params.norm_to_string p.norm)
  @ if p.poisson_count then [] else [ "--fixed-count" ]

(* What an op's argv parser sees: the scanned flags, the already-parsed
   exec options (sample's default name is the --output path), and the
   model token sample consumed before its flags. *)
type argctx = {
  ax_op : string;
  ax_seen : (string, string) Hashtbl.t;
  ax_exec : exec_opts;
  ax_model : string option;
}

(* One row per operation.  Every accepted spelling, the flag table, and
   all four codec directions live here, so the JSON parser, the argv
   parser, the printers, the schema dump, the daemon's op inventory and
   the did-you-mean suggestions are all read off the same table and
   cannot drift apart.  [r_public = false] hides an op from the CLI and
   the schema (gen_shard rides under [sample ... --spill-out]) while
   keeping it a first-class wire op. *)
type row = {
  r_wire : string;  (* canonical wire spelling (spans, logs, metrics) *)
  r_cli : string;  (* canonical CLI token *)
  r_names : string list;  (* every accepted spelling, wire and CLI *)
  r_public : bool;
  r_doc : string;
  r_flags : fspec list;
  r_positional : string option;  (* canonical flag a bare argument maps to *)
  r_instance : request -> string option;
  r_fields : request -> (string * J.json) list;
  r_of_json : what:string -> J.json -> (request, Error.t) result;
  r_of_seen : argctx -> (request, Error.t) result;
  r_to_args : request -> string list;  (* op tokens + flags, no envelope tail *)
}

let req_instance ~op seen =
  match get seen "--instance" with
  | Some i -> Ok i
  | None -> err_bad "%s requires --instance (or a positional file)" op

let scenario_of_string_err s =
  match Experiments.Churn.scenario_of_string s with
  | Ok s -> Ok s
  | Error m -> err_bad "%s" m

let mutation_ops_of_string s =
  match
    Girg.Mutate.ops_of_strings (List.filter (fun p -> p <> "") (String.split_on_char ',' s))
  with
  | Ok [] -> err_bad "--ops needs at least one mutation"
  | Ok ops -> Ok ops
  | Error m -> err_bad "%s" m

let table =
  [
    {
      r_wire = "load";
      r_cli = "load";
      r_names = [ "load" ];
      r_public = true;
      r_doc = "load a saved instance into the registry";
      r_flags = load_flags;
      r_positional = Some "--path";
      r_instance = (function Load { name; _ } -> Some name | _ -> None);
      r_fields =
        (function
        | Load { name; path } -> [ ("name", J.Str name); ("path", J.Str path) ]
        | _ -> []);
      r_of_json =
        (fun ~what j ->
          let* name = req_field ~what "name" jstr j in
          let* path = req_field ~what "path" jstr j in
          Ok (Load { name; path }));
      r_of_seen =
        (fun cx ->
          match (get cx.ax_seen "--name", get cx.ax_seen "--path") with
          | Some name, Some path -> Ok (Load { name; path })
          | None, _ -> err_bad "load requires --name"
          | _, None -> err_bad "load requires --path (or a positional file)");
      r_to_args =
        (function
        | Load { name; path } -> ("load" :: fl "--name" name) @ fl "--path" path
        | _ -> []);
    };
    {
      r_wire = "sample";
      r_cli = "sample";
      r_names = [ "sample"; "gen" ];
      r_public = true;
      r_doc = "sample an instance (sample <girg|hrg|kleinberg> ...) and register it";
      r_flags = sample_common_flags;  (* model flags are listed per model in the schema *)
      r_positional = None;
      r_instance = (function Sample { name; _ } -> Some name | _ -> None);
      r_fields =
        (function
        | Sample { name; model; seed } ->
            (("name", J.Str name) :: model_fields model) @ [ ("seed", J.Int seed) ]
        | _ -> []);
      r_of_json =
        (fun ~what j ->
          let* name = req_field ~what "name" jstr j in
          let* model = model_of_json ~what j in
          let* seed = opt_field ~what "seed" jint j in
          Ok (Sample { name; model; seed = Option.value seed ~default:42 }));
      r_of_seen =
        (fun cx ->
          let op = cx.ax_op and seen = cx.ax_seen in
          let* seed = get_int ~op seen "--seed" ~default:42 in
          (* Spill-mode girg generation needs no registry name, so the
             name requirement is resolved lazily per branch. *)
          let name_res =
            match (get seen "--name", cx.ax_exec.output) with
            | Some n, _ -> Ok n
            | None, Some out -> Ok out
            | None, None ->
                err_bad "sample requires --name (or --output, whose path names the instance)"
          in
          match cx.ax_model with
          | Some "girg" ->
              let dflt = Girg.Params.default in
              let* n = get_int ~op seen "--n" ~default:10_000 in
              let* dim = get_int ~op seen "--dim" ~default:2 in
              let* beta = get_float ~op seen "--beta" ~default:2.5 in
              let* w_min = get_float ~op seen "--w-min" ~default:1.0 in
              let* alpha =
                match get seen "--alpha" with
                | None -> Ok (Girg.Params.Finite 2.0)
                | Some v -> alpha_of_string v
              in
              let* c = get_float ~op seen "--c" ~default:0.25 in
              let* norm =
                match get seen "--norm" with
                | None -> Ok dflt.Girg.Params.norm
                | Some v -> (
                    match Girg.Params.norm_of_string v with
                    | Some n -> Ok n
                    | None -> err_bad "bad --norm %S (linf | l2 | l1)" v)
              in
              let poisson_count = not (Hashtbl.mem seen "--fixed-count") in
              let* p =
                validate_girg ~what:"sample"
                  { Girg.Params.n; dim; beta; w_min; alpha; c; norm; poisson_count }
              in
              (match get seen "--spill-out" with
              | Some out ->
                  let* shards = get_int ~op seen "--shards" ~default:1 in
                  let* shard = get_int ~op seen "--shard" ~default:0 in
                  let* () = check_shard_range ~what:op ~shards ~shard in
                  Ok (Gen_shard { params = p; seed; shards; shard; out })
              | None ->
                  if Hashtbl.mem seen "--shards" || Hashtbl.mem seen "--shard" then
                    err_bad "sharded generation writes a spill file: add --spill-out FILE"
                  else
                    let* name = name_res in
                    Ok (Sample { name; model = Girg p; seed }))
          | Some "hrg" ->
              let* name = name_res in
              let* n = get_int ~op seen "--n" ~default:10_000 in
              let* alpha_h = get_float ~op seen "--alpha-h" ~default:0.75 in
              let* radius_c = get_float ~op seen "--radius-c" ~default:0.0 in
              let* temperature = get_float ~op seen "--temperature" ~default:0.0 in
              (match Hyperbolic.Hrg.make ~alpha_h ~radius_c ~temperature ~n () with
              | p -> Ok (Sample { name; model = Hrg p; seed })
              | exception Invalid_argument m -> err_bad "invalid hrg parameters: %s" m)
          | Some "kleinberg" ->
              let* name = name_res in
              let* side = req_int ~op seen "--side" in
              let* long_range = get_int ~op seen "--long-range" ~default:1 in
              let* exponent = get_float ~op seen "--exponent" ~default:2.0 in
              (match Kleinberg.Lattice.make ~long_range ~exponent ~side () with
              | p -> Ok (Sample { name; model = Kleinberg p; seed })
              | exception Invalid_argument m ->
                  err_bad "invalid kleinberg parameters: %s" m)
          | Some other -> err_bad "unknown model %S (girg | hrg | kleinberg)" other
          | None -> err_bad "sample needs a model: sample <girg|hrg|kleinberg> ...");
      r_to_args =
        (function
        | Sample { name; model; seed } ->
            let model_args =
              match model with
              | Girg p -> "girg" :: girg_model_args p
              | Hrg p ->
                  [ "hrg" ]
                  @ fl "--n" (string_of_int p.Hyperbolic.Hrg.n)
                  @ fl "--alpha-h" (float_arg p.alpha_h)
                  @ fl "--radius-c" (float_arg p.radius_c)
                  @ fl "--temperature" (float_arg p.temperature)
              | Kleinberg p ->
                  [ "kleinberg" ]
                  @ fl "--side" (string_of_int p.Kleinberg.Lattice.side)
                  @ fl "--long-range" (string_of_int p.long_range)
                  @ fl "--exponent" (float_arg p.exponent)
            in
            ("sample" :: model_args) @ fl "--name" name @ fl "--seed" (string_of_int seed)
        | _ -> []);
    };
    {
      r_wire = "route";
      r_cli = "route";
      r_names = [ "route" ];
      r_public = true;
      r_doc = "route one message and return the walk summary";
      r_flags = route_flags;
      r_positional = Some "--instance";
      r_instance = (function Route { instance; _ } -> Some instance | _ -> None);
      r_fields =
        (function
        | Route { instance; source; target; protocol; max_steps } ->
            [
              ("instance", J.Str instance);
              ("source", J.Int source);
              ("target", J.Int target);
              ("protocol", J.Str (protocol_to_string protocol));
            ]
            @ (match max_steps with Some m -> [ ("max_steps", J.Int m) ] | None -> [])
        | _ -> []);
      r_of_json =
        (fun ~what j ->
          let* instance = req_field ~what "instance" jstr j in
          let* source = req_field ~what "source" jint j in
          let* target = req_field ~what "target" jint j in
          let* protocol = protocol_of_json ~what j in
          let* max_steps = opt_field ~what "max_steps" jint j in
          Ok (Route { instance; source; target; protocol; max_steps }));
      r_of_seen =
        (fun cx ->
          let op = cx.ax_op and seen = cx.ax_seen in
          let* instance = req_instance ~op seen in
          let* source = req_int ~op seen "--source" in
          let* target = req_int ~op seen "--target" in
          let* protocol = protocol_of_seen ~op seen in
          let* max_steps = opt_int ~op seen "--max-steps" in
          Ok (Route { instance; source; target; protocol; max_steps }));
      r_to_args =
        (function
        | Route { instance; source; target; protocol; max_steps } ->
            [ "route" ]
            @ fl "--instance" instance
            @ fl "--source" (string_of_int source)
            @ fl "--target" (string_of_int target)
            @ fl "--protocol" (protocol_to_string protocol)
            @ opt_fl "--max-steps" (Option.map string_of_int max_steps)
        | _ -> []);
    };
    {
      r_wire = "route_batch";
      r_cli = "route-batch";
      r_names = [ "route_batch"; "route-batch" ];
      r_public = true;
      r_doc = "route a batch of pairs (explicit or sampled) in one request";
      r_flags = batch_flags;
      r_positional = Some "--instance";
      r_instance = (function Route_batch { instance; _ } -> Some instance | _ -> None);
      r_fields =
        (function
        | Route_batch { instance; pairs; protocol; max_steps } ->
            (("instance", J.Str instance) :: pairs_fields pairs)
            @ [ ("protocol", J.Str (protocol_to_string protocol)) ]
            @ (match max_steps with Some m -> [ ("max_steps", J.Int m) ] | None -> [])
        | _ -> []);
      r_of_json =
        (fun ~what j ->
          let* instance = req_field ~what "instance" jstr j in
          let* pairs = pairs_of_json ~what j in
          let* protocol = protocol_of_json ~what j in
          let* max_steps = opt_field ~what "max_steps" jint j in
          Ok (Route_batch { instance; pairs; protocol; max_steps }));
      r_of_seen =
        (fun cx ->
          let op = cx.ax_op and seen = cx.ax_seen in
          let* instance = req_instance ~op seen in
          let* protocol = protocol_of_seen ~op seen in
          let* max_steps = opt_int ~op seen "--max-steps" in
          let* pairs =
            match (get seen "--pairs", get seen "--count") with
            | Some _, Some _ -> err_bad "route-batch takes --pairs or --count, not both"
            | Some ps, None ->
                let* ps = parse_pairs ~op ps in
                Ok (Pairs ps)
            | None, Some _ ->
                let* count = req_int ~op seen "--count" in
                let* pair_seed = get_int ~op seen "--pair-seed" ~default:0 in
                let* pool =
                  match get seen "--pool" with
                  | None -> Ok Giant
                  | Some v -> pool_of_string v
                in
                Ok (Drawn { count; pair_seed; pool })
            | None, None -> err_bad "route-batch requires --pairs or --count"
          in
          Ok (Route_batch { instance; pairs; protocol; max_steps }));
      r_to_args =
        (function
        | Route_batch { instance; pairs; protocol; max_steps } ->
            let pair_args =
              match pairs with
              | Pairs ps ->
                  fl "--pairs"
                    (String.concat ","
                       (List.map (fun (s, t) -> Printf.sprintf "%d:%d" s t) ps))
              | Drawn { count; pair_seed; pool } ->
                  fl "--count" (string_of_int count)
                  @ fl "--pair-seed" (string_of_int pair_seed)
                  @ fl "--pool" (pool_to_string pool)
            in
            [ "route-batch" ]
            @ fl "--instance" instance
            @ pair_args
            @ fl "--protocol" (protocol_to_string protocol)
            @ opt_fl "--max-steps" (Option.map string_of_int max_steps)
        | _ -> []);
    };
    {
      r_wire = "stats";
      r_cli = "stats";
      r_names = [ "stats" ];
      r_public = true;
      r_doc = "structural statistics of an instance";
      r_flags = stats_flags;
      r_positional = Some "--instance";
      r_instance = (function Stats { instance } -> Some instance | _ -> None);
      r_fields =
        (function Stats { instance } -> [ ("instance", J.Str instance) ] | _ -> []);
      r_of_json =
        (fun ~what j ->
          let* instance = req_field ~what "instance" jstr j in
          Ok (Stats { instance }));
      r_of_seen =
        (fun cx ->
          let* instance = req_instance ~op:cx.ax_op cx.ax_seen in
          Ok (Stats { instance }));
      r_to_args =
        (function Stats { instance } -> "stats" :: fl "--instance" instance | _ -> []);
    };
    {
      r_wire = "gen_shard";
      r_cli = "sample";
      r_names = [ "gen_shard"; "gen-shard" ];
      r_public = false;  (* rides under [sample girg ... --spill-out] on the CLI *)
      r_doc =
        "sample one shard of a GIRG's deterministic edge enumeration and spill it";
      r_flags = [];
      r_positional = None;
      r_instance = (fun _ -> None);
      r_fields =
        (function
        | Gen_shard { params; seed; shards; shard; out } ->
            model_fields (Girg params)
            @ [
                ("seed", J.Int seed);
                ("shards", J.Int shards);
                ("shard", J.Int shard);
                ("out", J.Str out);
              ]
        | _ -> []);
      r_of_json =
        (fun ~what j ->
          let* model = model_of_json ~what j in
          match model with
          | Girg params ->
              let* seed = opt_field ~what "seed" jint j in
              let* shards = req_field ~what "shards" jint j in
              let* shard = req_field ~what "shard" jint j in
              let* out = req_field ~what "out" jstr j in
              let* () = check_shard_range ~what ~shards ~shard in
              Ok
                (Gen_shard
                   { params; seed = Option.value seed ~default:42; shards; shard; out })
          | Hrg _ | Kleinberg _ -> err_bad "gen_shard supports the girg model only");
      r_of_seen =
        (fun _ -> err_bad "gen_shard rides under: sample girg ... --spill-out FILE");
      r_to_args =
        (function
        | Gen_shard { params; seed; shards; shard; out } ->
            [ "sample"; "girg" ]
            @ girg_model_args params
            @ fl "--seed" (string_of_int seed)
            @ fl "--shards" (string_of_int shards)
            @ fl "--shard" (string_of_int shard)
            @ fl "--spill-out" out
        | _ -> []);
    };
    {
      r_wire = "merge_shards";
      r_cli = "merge-shards";
      r_names = [ "merge_shards"; "merge-shards" ];
      r_public = true;
      r_doc = "merge per-shard spill files into one instance and register it";
      r_flags = merge_flags;
      r_positional = Some "--spills";
      r_instance = (function Merge_shards { name; _ } -> Some name | _ -> None);
      r_fields =
        (function
        | Merge_shards { name; spills } ->
            [
              ("name", J.Str name);
              ("spills", J.Arr (List.map (fun p -> J.Str p) spills));
            ]
        | _ -> []);
      r_of_json =
        (fun ~what j ->
          let* name = req_field ~what "name" jstr j in
          match J.member "spills" j with
          | Some (J.Arr items) ->
              let rec go acc = function
                | [] ->
                    if acc = [] then err_bad "merge_shards needs at least one spill"
                    else Ok (Merge_shards { name; spills = List.rev acc })
                | J.Str p :: rest -> go (p :: acc) rest
                | _ -> err_bad "\"spills\" entries must be path strings"
              in
              go [] items
          | _ -> err_bad "merge_shards request is missing array field \"spills\"");
      r_of_seen =
        (fun cx ->
          let seen = cx.ax_seen in
          let* name =
            match get seen "--name" with
            | Some n -> Ok n
            | None -> err_bad "merge-shards requires --name"
          in
          let* spills =
            match get seen "--spills" with
            | Some s -> (
                match List.filter (fun p -> p <> "") (String.split_on_char ',' s) with
                | [] -> err_bad "--spills needs at least one path"
                | paths -> Ok paths)
            | None ->
                err_bad
                  "merge-shards requires --spills (comma-separated spill files, or one \
                   positional argument)"
          in
          Ok (Merge_shards { name; spills }));
      r_to_args =
        (function
        | Merge_shards { name; spills } ->
            [ "merge-shards" ]
            @ fl "--name" name
            @ fl "--spills" (String.concat "," spills)
        | _ -> []);
    };
    {
      r_wire = "snapshot";
      r_cli = "snapshot";
      r_names = [ "snapshot" ];
      r_public = true;
      r_doc = "re-encode a saved instance as a v2 binary (mmap-ready) snapshot";
      r_flags = snapshot_flags;
      r_positional = Some "--instance";
      r_instance = (function Snapshot { instance; _ } -> Some instance | _ -> None);
      r_fields =
        (function
        | Snapshot { instance; out } ->
            [ ("instance", J.Str instance); ("out", J.Str out) ]
        | _ -> []);
      r_of_json =
        (fun ~what j ->
          let* instance = req_field ~what "instance" jstr j in
          let* out = req_field ~what "out" jstr j in
          Ok (Snapshot { instance; out }));
      r_of_seen =
        (fun cx ->
          let op = cx.ax_op and seen = cx.ax_seen in
          let* instance = req_instance ~op seen in
          let* out =
            match get seen "--out" with
            | Some o -> Ok o
            | None -> err_bad "snapshot requires --out FILE"
          in
          Ok (Snapshot { instance; out }));
      r_to_args =
        (function
        | Snapshot { instance; out } ->
            ("snapshot" :: fl "--instance" instance) @ fl "--out" out
        | _ -> []);
    };
    {
      r_wire = "mutate";
      r_cli = "mutate";
      r_names = [ "mutate" ];
      r_public = true;
      r_doc =
        "apply a live-mutation script (leave/rejoin/drop/resample) as one new graph \
         epoch";
      r_flags = mutate_flags;
      r_positional = Some "--instance";
      r_instance = (function Mutate { instance; _ } -> Some instance | _ -> None);
      r_fields =
        (function
        | Mutate { instance; ops; seed } ->
            [
              ("instance", J.Str instance);
              ( "ops",
                J.Arr (List.map (fun o -> J.Str (Girg.Mutate.op_to_string o)) ops) );
              ("seed", J.Int seed);
            ]
        | _ -> []);
      r_of_json =
        (fun ~what j ->
          let* instance = req_field ~what "instance" jstr j in
          let* ops =
            match J.member "ops" j with
            | Some (J.Arr items) ->
                let rec go acc = function
                  | [] -> Ok (List.rev acc)
                  | J.Str s :: rest -> (
                      match Girg.Mutate.op_of_string s with
                      | Ok op -> go (op :: acc) rest
                      | Error m -> err_bad "%s" m)
                  | _ -> err_bad "\"ops\" entries must be mutation strings"
                in
                let* ops = go [] items in
                if ops = [] then err_bad "mutate needs at least one op" else Ok ops
            | Some _ -> err_bad "field \"ops\" of a %s request must be an array" what
            | None -> err_bad "%s request is missing array field \"ops\"" what
          in
          let* seed = opt_field ~what "seed" jint j in
          Ok (Mutate { instance; ops; seed = Option.value seed ~default:42 }));
      r_of_seen =
        (fun cx ->
          let op = cx.ax_op and seen = cx.ax_seen in
          let* instance = req_instance ~op seen in
          let* ops =
            match get seen "--ops" with
            | Some s -> mutation_ops_of_string s
            | None -> err_bad "mutate requires --ops (comma-separated, e.g. leave:5,drop:3:7)"
          in
          let* seed = get_int ~op seen "--seed" ~default:42 in
          Ok (Mutate { instance; ops; seed }));
      r_to_args =
        (function
        | Mutate { instance; ops; seed } ->
            [ "mutate" ]
            @ fl "--instance" instance
            @ fl "--ops" (String.concat "," (List.map Girg.Mutate.op_to_string ops))
            @ fl "--seed" (string_of_int seed)
        | _ -> []);
    };
    {
      r_wire = "churn";
      r_cli = "churn";
      r_names = [ "churn" ];
      r_public = true;
      r_doc =
        "run a churn scenario (mutate, re-route, repeat) and report per-epoch delivery";
      r_flags = churn_flags;
      r_positional = Some "--instance";
      r_instance = (function Churn { instance; _ } -> Some instance | _ -> None);
      r_fields =
        (function
        | Churn { instance; config = c } ->
            [
              ("instance", J.Str instance);
              ("scenario", J.Str (Experiments.Churn.scenario_to_string c.scenario));
              ("epochs", J.Int c.epochs);
              ("events", J.Int c.events);
              ("quit", J.Float c.quit);
              ("seed", J.Int c.seed);
              ("count", J.Int c.count);
              ("pair_seed", J.Int c.pair_seed);
              ("protocol", J.Str (protocol_to_string c.protocol));
            ]
            @ (match c.max_steps with Some m -> [ ("max_steps", J.Int m) ] | None -> [])
        | _ -> []);
      r_of_json =
        (fun ~what j ->
          let* instance = req_field ~what "instance" jstr j in
          let* scenario =
            match J.member "scenario" j with
            | None -> Ok Experiments.Churn.Uniform
            | Some (J.Str s) -> scenario_of_string_err s
            | Some _ -> err_bad "field \"scenario\" of a %s request has the wrong type" what
          in
          let* epochs = opt_field ~what "epochs" jint j in
          let* events = opt_field ~what "events" jint j in
          let* quit = opt_field ~what "quit" jfloat j in
          let* seed = opt_field ~what "seed" jint j in
          let* count = opt_field ~what "count" jint j in
          let* pair_seed = opt_field ~what "pair_seed" jint j in
          let* protocol = protocol_of_json ~what j in
          let* max_steps = opt_field ~what "max_steps" jint j in
          Ok
            (Churn
               {
                 instance;
                 config =
                   {
                     Experiments.Churn.scenario;
                     epochs = Option.value epochs ~default:3;
                     events = Option.value events ~default:16;
                     quit = Option.value quit ~default:0.0;
                     seed = Option.value seed ~default:42;
                     count = Option.value count ~default:200;
                     pair_seed = Option.value pair_seed ~default:0;
                     protocol;
                     max_steps;
                   };
               }));
      r_of_seen =
        (fun cx ->
          let op = cx.ax_op and seen = cx.ax_seen in
          let* instance = req_instance ~op seen in
          let* scenario =
            match get seen "--scenario" with
            | None -> Ok Experiments.Churn.Uniform
            | Some s -> scenario_of_string_err s
          in
          let* epochs = get_int ~op seen "--epochs" ~default:3 in
          let* events = get_int ~op seen "--events" ~default:16 in
          let* quit = get_float ~op seen "--quit" ~default:0.0 in
          let* seed = get_int ~op seen "--seed" ~default:42 in
          let* count = get_int ~op seen "--count" ~default:200 in
          let* pair_seed = get_int ~op seen "--pair-seed" ~default:0 in
          let* protocol = protocol_of_seen ~op seen in
          let* max_steps = opt_int ~op seen "--max-steps" in
          Ok
            (Churn
               {
                 instance;
                 config =
                   {
                     Experiments.Churn.scenario;
                     epochs;
                     events;
                     quit;
                     seed;
                     count;
                     pair_seed;
                     protocol;
                     max_steps;
                   };
               }));
      r_to_args =
        (function
        | Churn { instance; config = c } ->
            [ "churn" ]
            @ fl "--instance" instance
            @ fl "--scenario" (Experiments.Churn.scenario_to_string c.scenario)
            @ fl "--epochs" (string_of_int c.epochs)
            @ fl "--events" (string_of_int c.events)
            @ fl "--quit" (float_arg c.quit)
            @ fl "--seed" (string_of_int c.seed)
            @ fl "--count" (string_of_int c.count)
            @ fl "--pair-seed" (string_of_int c.pair_seed)
            @ fl "--protocol" (protocol_to_string c.protocol)
            @ opt_fl "--max-steps" (Option.map string_of_int c.max_steps)
        | _ -> []);
    };
    {
      r_wire = "health";
      r_cli = "health";
      r_names = [ "health" ];
      r_public = true;
      r_doc = "server liveness, counters, registry contents";
      r_flags = [];
      r_positional = None;
      r_instance = (fun _ -> None);
      r_fields = (fun _ -> []);
      r_of_json = (fun ~what:_ _ -> Ok Health);
      r_of_seen = (fun _ -> Ok Health);
      r_to_args = (fun _ -> [ "health" ]);
    };
    {
      r_wire = "stats-server";
      r_cli = "stats-server";
      r_names = [ "stats-server"; "server-stats" ];
      r_public = true;
      r_doc =
        "live telemetry snapshot: counters, gauges, per-stage latency quantiles, \
         Prometheus text dump";
      r_flags = [];
      r_positional = None;
      r_instance = (fun _ -> None);
      r_fields = (fun _ -> []);
      r_of_json = (fun ~what:_ _ -> Ok Server_stats);
      r_of_seen = (fun _ -> Ok Server_stats);
      r_to_args = (fun _ -> [ "stats-server" ]);
    };
    {
      r_wire = "drain";
      r_cli = "drain";
      r_names = [ "drain" ];
      r_public = true;
      r_doc = "stop accepting work, finish in-flight requests, exit";
      r_flags = [];
      r_positional = None;
      r_instance = (fun _ -> None);
      r_fields = (fun _ -> []);
      r_of_json = (fun ~what:_ _ -> Ok Drain);
      r_of_seen = (fun _ -> Ok Drain);
      r_to_args = (fun _ -> [ "drain" ]);
    };
  ]

(* The one remaining constructor match: everything else about an op is
   read off its row. *)
let row_of_request r =
  let wire =
    match r with
    | Load _ -> "load"
    | Sample _ -> "sample"
    | Route _ -> "route"
    | Route_batch _ -> "route_batch"
    | Stats _ -> "stats"
    | Gen_shard _ -> "gen_shard"
    | Merge_shards _ -> "merge_shards"
    | Snapshot _ -> "snapshot"
    | Mutate _ -> "mutate"
    | Churn _ -> "churn"
    | Health -> "health"
    | Server_stats -> "stats-server"
    | Drain -> "drain"
  in
  List.find (fun row -> row.r_wire = wire) table

let op_names = List.map (fun r -> r.r_wire) table
let op_of_request r = (row_of_request r).r_wire
let instance_of_request r = (row_of_request r).r_instance r
let request_fields r = (row_of_request r).r_fields r

(* ------------------------------------------------------------------ *)
(* Envelope codecs (both directions derive from the table)             *)

let envelope_to_json e =
  J.Obj
    ([ ("v", J.Int version); ("op", J.Str (op_of_request e.request)) ]
    @ (match e.id with Some i -> [ ("id", J.Int i) ] | None -> [])
    @ (match e.deadline_ms with Some d -> [ ("deadline_ms", J.Int d) ] | None -> [])
    @ (match e.trace with
      | Some t ->
          [ ("trace", J.Obj [ ("id", J.Str t.trace_id); ("span", J.Int t.parent_span) ]) ]
      | None -> [])
    @ request_fields e.request)

let envelope_of_json j =
  let* () =
    match J.member "v" j with
    | Some (J.Int v) when v = version -> Ok ()
    | Some (J.Int v) ->
        Error
          (Error.make Error.Unsupported_version
             "unsupported API version %d (this server speaks v%d only)" v version)
    | Some _ -> err_bad "field \"v\" must be an integer"
    | None -> err_bad "request is missing field \"v\" (API version, currently %d)" version
  in
  let* op = req_field ~what:"any" "op" jstr j in
  let* id = opt_field ~what:op "id" jint j in
  let* deadline_ms = opt_field ~what:op "deadline_ms" jint j in
  let* trace =
    match J.member "trace" j with
    | None -> Ok None
    | Some (J.Obj _ as t) ->
        let* trace_id = req_field ~what:"trace" "id" jstr t in
        let* parent_span = opt_field ~what:"trace" "span" jint t in
        Ok (Some { trace_id; parent_span = Option.value parent_span ~default:0 })
    | Some _ -> err_bad "field \"trace\" of a %s request must be an object" op
  in
  let* request =
    match List.find_opt (fun r -> List.mem op r.r_names) table with
    | Some row -> row.r_of_json ~what:op j
    | None -> err_bad "unknown op %S (%s)" op (String.concat " | " op_names)
  in
  Ok { id; deadline_ms; trace; request }

let envelope_of_line line =
  match J.json_of_string line with
  | Error m -> err_bad "unparseable request line: %s" m
  | Ok j -> envelope_of_json j

let request_line e = J.json_to_string (envelope_to_json e)

let cli_ops_doc () =
  String.concat " | "
    (List.filter_map (fun r -> if r.r_public then Some r.r_cli else None) table)

let of_args args =
  match args with
  | [] -> err_bad "missing operation (%s)" (cli_ops_doc ())
  | op_tok :: rest -> (
      match List.find_opt (fun r -> r.r_public && List.mem op_tok r.r_names) table with
      | None -> err_bad "unknown operation %S (%s)" op_tok (cli_ops_doc ())
      | Some row ->
          let op = row.r_cli in
          (* sample's leading bare token picks the model and swaps that
             model's flag table into the scanner. *)
          let* model, op_flags, rest =
            if row.r_wire <> "sample" then Ok (None, row.r_flags, rest)
            else
              match rest with
              | model :: rest when String.length model > 0 && model.[0] <> '-' ->
                  let mflags =
                    Option.value (List.assoc_opt model model_flag_table) ~default:[]
                  in
                  Ok (Some model, mflags @ row.r_flags, rest)
              | _ -> err_bad "sample needs a model: sample <girg|hrg|kleinberg> ..."
          in
          let known = op_flags @ envelope_flags @ exec_flags in
          let* seen, positionals = scan ~op ~known rest in
          let* () =
            match (positionals, row.r_positional) with
            | [], _ -> Ok ()
            | [ p ], Some flag ->
                if Hashtbl.mem seen flag then
                  err_bad "%s got both a positional argument and %s" op flag
                else begin
                  Hashtbl.replace seen flag p;
                  Ok ()
                end
            | p :: _, _ -> err_bad "unexpected argument %S for %s" p op
          in
          let* exec = exec_of_seen ~op seen in
          let* id = opt_int ~op seen "--id" in
          let* deadline_ms = opt_int ~op seen "--deadline-ms" in
          let* trace =
            let* parent = opt_int ~op seen "--trace-parent" in
            match (get seen "--trace-id", parent) with
            | Some trace_id, parent ->
                Ok (Some { trace_id; parent_span = Option.value parent ~default:0 })
            | None, Some _ -> err_bad "--trace-parent requires --trace-id"
            | None, None -> Ok None
          in
          let* request =
            row.r_of_seen { ax_op = op; ax_seen = seen; ax_exec = exec; ax_model = model }
          in
          Ok ({ id; deadline_ms; trace; request }, exec))

let to_args ?(exec = no_exec) e =
  let tail =
    opt_fl "--id" (Option.map string_of_int e.id)
    @ opt_fl "--deadline-ms" (Option.map string_of_int e.deadline_ms)
    @ (match e.trace with
      | Some t ->
          [ "--trace-id"; t.trace_id; "--trace-parent"; string_of_int t.parent_span ]
      | None -> [])
    @ opt_fl "--output" exec.output
    @ opt_fl "--obs-out" exec.obs_out
    @ opt_fl "--events-out" exec.events_out
    @ opt_fl "--trace-out" exec.trace_out
    @ opt_fl "--jobs" (Option.map string_of_int exec.jobs)
  in
  (row_of_request e.request).r_to_args e.request @ tail


(* ------------------------------------------------------------------ *)
(* Schema dump                                                         *)

let fspec_json f =
  J.Obj
    [
      ("flag", J.Str f.flag);
      ("aliases", J.Arr (List.map (fun a -> J.Str a) f.als));
      ("type", J.Str f.ftyp);
      ("required", J.Bool f.freq);
      ("default", match f.fdefault with Some d -> J.Str d | None -> J.Null);
      ("doc", J.Str f.fdoc);
    ]

let schema_json () =
  let op_json r =
    let extra =
      if r.r_wire = "sample" then
        [
          ( "models",
            J.Arr
              (List.map
                 (fun (m, fs) ->
                   J.Obj [ ("model", J.Str m); ("args", J.Arr (List.map fspec_json fs)) ])
                 model_flag_table) );
        ]
      else []
    in
    J.Obj
      ([
         ("op", J.Str r.r_cli);
         ( "aliases",
           J.Arr
             (List.filter_map
                (fun a -> if a = r.r_cli then None else Some (J.Str a))
                r.r_names) );
         ("doc", J.Str r.r_doc);
         ( "positional",
           match r.r_positional with Some p -> J.Str p | None -> J.Null );
         ("args", J.Arr (List.map fspec_json r.r_flags));
       ]
      @ extra)
  in
  J.Obj
    [
      ("schema", J.Str "smallworld.api.v1");
      ("version", J.Int version);
      ( "ops",
        J.Arr
          (List.filter_map
             (fun r -> if r.r_public then Some (op_json r) else None)
             table) );
      ("envelope_args", J.Arr (List.map fspec_json envelope_flags));
      ("exec_args", J.Arr (List.map fspec_json exec_flags));
      ( "error_codes",
        J.Arr
          (List.map
             (fun c ->
               J.Obj
                 [
                   ("code", J.Str (Error.code_string c));
                   ("exit", J.Int (Error.exit_code c));
                 ])
             Error.all_codes) );
    ]
