let err_bad fmt =
  Printf.ksprintf (fun message -> Error { Error.code = Error.Bad_request; message }) fmt

let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e

(* This is the byte-level contract of the route API: the daemon's
   [text] field and [graphs_cli route]'s stdout are both exactly this
   string.  Any change here is a visible protocol change. *)
let route_text ~protocol ~(outcome : Greedy_routing.Outcome.t) ~shortest =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "%s: %s\n"
       (Greedy_routing.Protocol.name protocol)
       (Greedy_routing.Outcome.to_string outcome));
  if List.length outcome.walk <= 50 then
    Buffer.add_string buf
      (Printf.sprintf "walk: %s\n"
         (String.concat " -> " (List.map string_of_int outcome.walk)))
  else Buffer.add_string buf (Printf.sprintf "walk: (%d hops, omitted)\n" outcome.steps);
  (match shortest with
  | Some d when d > 0 && Greedy_routing.Outcome.delivered outcome ->
      Buffer.add_string buf
        (Printf.sprintf "shortest path: %d hops (stretch %.3f)\n" d
           (float_of_int outcome.steps /. float_of_int d))
  | Some d -> Buffer.add_string buf (Printf.sprintf "shortest path: %d hops\n" d)
  | None -> Buffer.add_string buf "source and target are disconnected\n");
  Buffer.contents buf

let check_vertices ~n pairs =
  let bad =
    Array.exists (fun (s, t) -> s < 0 || s >= n || t < 0 || t >= n) pairs
  in
  if bad then err_bad "vertices must lie in [0, %d)" n else Ok ()

let reply_of_outcome ~protocol ~source ~target ~(outcome : Greedy_routing.Outcome.t)
    ~shortest =
  {
    V1.source;
    target;
    status = outcome.status;
    steps = outcome.steps;
    visited = outcome.visited;
    shortest;
    text = route_text ~protocol ~outcome ~shortest;
  }

let route ~(inst : Girg.Instance.t) ~protocol ?max_steps ~source ~target () =
  let n = Sparse_graph.Graph.n inst.graph in
  if source < 0 || source >= n || target < 0 || target >= n then
    err_bad "vertices must lie in [0, %d)" n
  else
    let objective = Greedy_routing.Objective.girg_phi inst ~target in
    let outcome =
      Greedy_routing.Protocol.run protocol ~graph:inst.graph ~objective ~source ?max_steps ()
    in
    let shortest =
      Obs.Span.with_ ~name:"route.bfs" @@ fun () ->
      Sparse_graph.Bfs.distance inst.graph ~source ~target
    in
    Ok (reply_of_outcome ~protocol ~source ~target ~outcome ~shortest)

let route_batch ?pool ~(inst : Girg.Instance.t) ~protocol ?max_steps ~pairs () =
  let n = Sparse_graph.Graph.n inst.graph in
  match check_vertices ~n pairs with
  | Error e -> Error e
  | Ok () ->
      let pool = match pool with Some p -> p | None -> Parallel.Global.get () in
      let graph = inst.graph in
      let one i =
        let source, target = pairs.(i) in
        let objective =
          Experiments.Workload.memoized ~n (Greedy_routing.Objective.girg_phi inst ~target)
        in
        let outcome =
          Greedy_routing.Protocol.run protocol ~graph ~objective ~source ?max_steps ()
        in
        let shortest = Sparse_graph.Bfs.distance graph ~source ~target in
        reply_of_outcome ~protocol ~source ~target ~outcome ~shortest
      in
      Ok (Array.to_list (Parallel.Pool.map pool ~n:(Array.length pairs) one))

let resolve_pairs ~(inst : Girg.Instance.t) = function
  | V1.Pairs ps ->
      let pairs = Array.of_list ps in
      let* () = check_vertices ~n:(Sparse_graph.Graph.n inst.graph) pairs in
      Ok pairs
  | V1.Drawn { count; pair_seed; pool } ->
      if count < 0 then err_bad "pair count must be non-negative, got %d" count
      else if Sparse_graph.Graph.n inst.graph < 2 then
        err_bad "instance has fewer than two vertices; cannot sample pairs"
      else
        let rng = Prng.Rng.create ~seed:pair_seed in
        Ok
          (match pool with
          | V1.Any ->
              Experiments.Workload.sample_pairs_any ~rng
                ~n:(Sparse_graph.Graph.n inst.graph) ~count
          | V1.Giant ->
              Experiments.Workload.sample_pairs_giant ~rng ~graph:inst.graph ~count)

let instantiate ~model ~seed =
  let rng = Prng.Rng.create ~seed in
  match model with
  | V1.Girg params -> Girg.Instance.generate ~rng params
  | V1.Hrg p ->
      let h = Hyperbolic.Hrg.generate ~rng p in
      (* The GIRG equivalence of Section 11: the stored kernel
         parameters describe the equivalent GIRG, and phi on that
         instance orders vertices like the hyperbolic objective. *)
      let girg_params =
        Girg.Params.make ~dim:1
          ~beta:(Float.min 2.999 (Hyperbolic.Hrg.beta p))
          ~w_min:(exp (-.p.radius_c /. 2.0))
          ~alpha:
            (if p.temperature = 0.0 then Girg.Params.Infinite
             else Girg.Params.Finite (1.0 /. p.temperature))
          ~poisson_count:false ~n:p.n ()
      in
      {
        Girg.Instance.params = girg_params;
        weights = h.weights;
        positions = h.positions;
        packed = Geometry.Torus.Packed.of_points ~dim:1 h.positions;
        graph = h.graph;
      }
  | V1.Kleinberg p ->
      let lat = Kleinberg.Lattice.generate ~rng p in
      let side = p.side in
      let n = side * side in
      let positions =
        Array.init n (fun v ->
            let a, b = Kleinberg.Lattice.coords p v in
            [|
              (float_of_int a +. 0.5) /. float_of_int side;
              (float_of_int b +. 0.5) /. float_of_int side;
            |])
      in
      let girg_params =
        Girg.Params.make ~dim:2 ~beta:2.5 ~w_min:1.0 ~alpha:Girg.Params.Infinite
          ~poisson_count:false ~n ()
      in
      {
        Girg.Instance.params = girg_params;
        weights = Array.make n 1.0;
        positions;
        packed = Geometry.Torus.Packed.of_points ~dim:2 positions;
        graph = lat.graph;
      }

let instance_info ~name (inst : Girg.Instance.t) =
  {
    V1.name;
    params = Girg.Params.to_string inst.params;
    vertices = Sparse_graph.Graph.n inst.graph;
    edges = Sparse_graph.Graph.m inst.graph;
  }

let stats (inst : Girg.Instance.t) =
  let g = inst.graph in
  let comps = Sparse_graph.Components.compute g in
  {
    V1.params = Girg.Params.to_string inst.params;
    vertices = Sparse_graph.Graph.n g;
    edges = Sparse_graph.Graph.m g;
    avg_degree = Sparse_graph.Graph.avg_degree g;
    max_degree = Sparse_graph.Graph.max_degree g;
    components = Sparse_graph.Components.count comps;
    giant = Sparse_graph.Components.giant_size comps;
  }
