type code =
  | Bad_request
  | Unsupported_version
  | Unknown_instance
  | Overloaded
  | Deadline
  | Draining
  | Io
  | Usage
  | Incomparable
  | Regression
  | Internal

let all_codes =
  [
    Bad_request;
    Unsupported_version;
    Unknown_instance;
    Overloaded;
    Deadline;
    Draining;
    Io;
    Usage;
    Incomparable;
    Regression;
    Internal;
  ]

let code_string = function
  | Bad_request -> "bad-request"
  | Unsupported_version -> "unsupported-version"
  | Unknown_instance -> "unknown-instance"
  | Overloaded -> "overloaded"
  | Deadline -> "deadline"
  | Draining -> "draining"
  | Io -> "io"
  | Usage -> "usage"
  | Incomparable -> "incomparable"
  | Regression -> "perf-regression"
  | Internal -> "internal"

let code_of_string s = List.find_opt (fun c -> code_string c = s) all_codes

let exit_code = function
  | Regression -> 1
  | Bad_request | Unsupported_version | Unknown_instance | Io | Usage | Incomparable -> 2
  | Overloaded | Deadline | Draining -> 75
  | Internal -> 70

type t = { code : code; message : string }

let make code fmt = Printf.ksprintf (fun message -> { code; message }) fmt

let to_string t = Printf.sprintf "error [%s] %s" (code_string t.code) t.message

let to_json t =
  Obs.Export.Obj
    [ ("code", Obs.Export.Str (code_string t.code)); ("message", Obs.Export.Str t.message) ]

let of_json j =
  match (Obs.Export.member "code" j, Obs.Export.member "message" j) with
  | Some (Obs.Export.Str c), Some (Obs.Export.Str message) -> begin
      match code_of_string c with
      | Some code -> Ok { code; message }
      | None -> Error (Printf.sprintf "unknown error code %S" c)
    end
  | _ -> Error "error object needs string fields \"code\" and \"message\""
