(** Length-prefixed binary framing for {!V1}.

    A binary frame is

    {v
      offset  size  field
      0       1     magic    0xB1 (distinct from '{' = 0x7B, so the first
                             byte of a connection selects the codec)
      1       1     version  0x01
      2       1..10 length   payload byte count, LEB128 varint
      ..      n     payload  binary-encoded JSON document
    v}

    and the payload is a tagged pre-order encoding of the same
    {!Obs.Export.json} tree the JSON line codec serialises, so the two
    codecs are exactly interconvertible: [decode_json (encode_json j) = Ok j]
    for every tree, and a reply decoded from a binary frame re-renders to
    the byte-identical JSON line the JSON codec would have sent.

    Payload node encoding (one tag byte, then tag-specific data):

    {v
      tag  node        data
      0    Null        -
      1    Bool true   -
      2    Bool false  -
      3    Int         zigzag LEB128 varint
      4    Float       8 bytes, IEEE-754 bits little-endian (exact)
      5    Str         varint byte count, then the bytes
      6    Arr         varint element count, then each element
      7    Obj         varint field count, then (key, value) pairs where
                       the key is a bare varint-prefixed string (no tag)
    v} *)

val magic : char
(** [0xB1]. *)

val version : int
(** [1]. *)

val max_frame_bytes : int
(** Default refusal bound for incoming payloads (16 MiB, matching the
    daemon's JSON [max_line_bytes]). *)

(** {1 Payload codec} *)

val encode_json : Obs.Export.json -> string
val decode_json : string -> (Obs.Export.json, string) result

(** {1 Framing} *)

val frame : string -> string
(** [frame payload] prepends magic, version and varint length. *)

val request_frame : V1.envelope -> string
val reply_frame : V1.reply -> string

val envelope_of_payload : string -> (V1.envelope, Error.t) result
val reply_of_payload : string -> (V1.reply, Error.t) result

(** {1 Incremental frame parser}

    Feed the accumulated unconsumed bytes of a connection; the parser
    never consumes a partial frame, so callers retry with a longer
    buffer as reads complete. *)

type parse_result =
  | Need
      (** Not enough bytes yet for a full header + payload. *)
  | Frame of { payload : string; consumed : int }
      (** One complete frame; drop [consumed] bytes from the buffer. *)
  | Oversized of { declared : int; consumed : int }
      (** Valid header but the declared payload exceeds [max_len]; the
          header's [consumed] bytes can be dropped and the next
          [declared] payload bytes discarded as they arrive, keeping
          the connection alive. *)
  | Bad_version of int
      (** Right magic, wrong version byte — the value is the version the
          client asked for.  The daemon answers with a structured
          [unsupported-version] error naming the supported range (the
          reply is sent in v{!version} framing, the only one it can
          speak) and closes. *)
  | Bad of string
      (** Malformed header (wrong magic, overwide or negative length
          varint): the connection cannot be resynchronised. *)

val parse : ?max_len:int -> string -> pos:int -> len:int -> parse_result
(** [parse buf ~pos ~len] examines [len] bytes of [buf] starting at
    [pos].  [max_len] defaults to {!max_frame_bytes}. *)
