(** Version 1 of the routing API.

    This module is the single definition of every route / sample / stats
    parameter in the system.  Three front-ends consume it:

    - the route-serving daemon ({!Server.Daemon}) speaks the JSON wire
      form ({!envelope_of_line} / {!reply_line}) over newline-delimited
      TCP;
    - [graphs_cli] parses its subcommands through {!of_args} (which
      also carries the deprecation shims for pre-v1 flag spellings);
    - [experiments_cli] reuses the shared validators via {!Cli}.

    Requests round-trip exactly through both codecs:
    [envelope_of_json (envelope_to_json e) = Ok e] and
    [of_args (to_args e) = Ok e] — pinned by tests, so the wire format
    cannot drift silently.  {!schema_json} dumps the whole surface
    (ops, flags, aliases, types, defaults, error codes) for client
    authors; [graphs_cli api-schema] prints it. *)

val version : int
(** [1].  Every wire object carries it as ["v"]. *)

(** {1 Request types} *)

type model =
  | Girg of Girg.Params.t
  | Hrg of Hyperbolic.Hrg.params
  | Kleinberg of Kleinberg.Lattice.params
      (** Kleinberg lattices are served through their GIRG embedding
          (unit weights, lattice positions on the torus) so that one
          instance type covers all three generators. *)

type pair_pool =
  | Any  (** uniform distinct pairs over all vertices *)
  | Giant  (** pairs drawn inside the giant component *)

type pairs_spec =
  | Pairs of (int * int) list  (** explicit (source, target) list *)
  | Drawn of { count : int; pair_seed : int; pool : pair_pool }
      (** sampled with [Workload.sample_pairs_*] from a fresh
          [Prng.Rng.create ~seed:pair_seed] — the same substream
          discipline the batch experiments use, so a served batch and a
          local [Workload] run see identical pairs *)

type request =
  | Load of { name : string; path : string }
      (** read a saved instance ({!Girg.Store} format) into the registry *)
  | Sample of { name : string; model : model; seed : int }
      (** sample an instance on demand and register it *)
  | Route of {
      instance : string;
      source : int;
      target : int;
      protocol : Greedy_routing.Protocol.t;
      max_steps : int option;
    }
  | Route_batch of {
      instance : string;
      pairs : pairs_spec;
      protocol : Greedy_routing.Protocol.t;
      max_steps : int option;
    }
  | Stats of { instance : string }
  | Gen_shard of {
      params : Girg.Params.t;
      seed : int;
      shards : int;
      shard : int;
      out : string;
    }
      (** sample shard [shard] of [shards] of a GIRG's deterministic
          edge enumeration and spill it to [out]
          ({!Girg.Shard.generate_spill}) — the out-of-core half of
          [sample].  On the CLI this is
          [gen girg ... --shards S --shard I --spill-out FILE]. *)
  | Merge_shards of { name : string; spills : string list }
      (** validate a complete spill set, concatenate the shard streams
          in shard order (bit-identical to single-process generation)
          and register the rebuilt instance under [name] *)
  | Snapshot of { instance : string; out : string }
      (** re-encode a registered (daemon) or on-disk (CLI) instance as
          a v2 binary snapshot at [out], ready for
          {!Girg.Store.load_mmap} *)
  | Mutate of { instance : string; ops : Girg.Mutate.op list; seed : int }
      (** apply a live-mutation script as ONE new graph epoch
          ({!Girg.Mutate.apply}): vertices leave/rejoin, edges drop, a
          vertex's incident edges re-sample from the instance's own
          connection kernel.  Deterministic given [(seed, epoch)]; on
          the daemon the mutated instance replaces the old one under the
          same name with a bumped registry generation, so cached routes
          for the old version can never be served again. *)
  | Churn of { instance : string; config : Experiments.Churn.config }
      (** run a churn scenario server-side: per epoch, plan mutations
          ({!Experiments.Churn.plan}), apply them as above, then measure
          delivery on the new version.  Returns one row per epoch. *)
  | Health
  | Server_stats
      (** live serving telemetry ([stats-server] on the wire): counter
          and gauge snapshot plus per-stage latency quantiles from the
          {!Obs.Hist}-backed histograms, and a Prometheus text dump.
          Served without the compute mutex, so it answers under full
          load. *)
  | Drain

(** Distributed-trace context ([{"trace":{"id":...,"span":...}}] on the
    wire, [--trace-id]/[--trace-parent] as flags): the client names the
    trace and the span id its own [smallworld.trace.v1] record carries,
    and the traced server hangs its record under that span — see
    {!Obs.Profile.merge}.  Purely advisory: a server without a trace
    sink ignores it. *)
type trace_ctx = { trace_id : string; parent_span : int }

type envelope = {
  id : int option;  (** echoed verbatim in the reply *)
  deadline_ms : int option;
      (** request-scoped deadline, measured from the moment the server
          reads the request; expiry yields the [deadline] error code *)
  trace : trace_ctx option;
  request : request;
}

val envelope : ?id:int -> ?deadline_ms:int -> ?trace:trace_ctx -> request -> envelope

(** {1 Response types} *)

type instance_info = { name : string; params : string; vertices : int; edges : int }

type route_reply = {
  source : int;
  target : int;
  status : Greedy_routing.Outcome.status;
  steps : int;
  visited : int;
  shortest : int option;  (** BFS distance; [None] when disconnected *)
  text : string;
      (** the exact bytes [graphs_cli route] prints for this route —
          byte-identical by construction (both call {!Render.route_text}) *)
}

type stats_reply = {
  params : string;
  vertices : int;
  edges : int;
  avg_degree : float;
  max_degree : int;
  components : int;
  giant : int;
}

type spill_info = {
  sp_path : string;
  sp_shard : int;
  sp_shards : int;
  sp_vertices : int;  (** realised vertex count (identical across the set) *)
  sp_edges : int;  (** edges in this shard's spill *)
}

type snapshot_info = {
  sn_path : string;
  sn_bytes : int;  (** size of the written snapshot file *)
  sn_vertices : int;
  sn_edges : int;
}

type mutate_reply = {
  mu_name : string;
  mu_epoch : int;  (** graph epoch after the script (always old + 1) *)
  mu_generation : int;  (** registry generation after the swap *)
  mu_live : int;  (** live (non-departed) vertices *)
  mu_vertices : int;  (** base vertex-id space, departed included *)
  mu_edges : int;  (** edges among live vertices *)
  mu_applied : int;  (** ops in the applied script *)
}

type churn_reply = {
  ch_name : string;
  ch_scenario : Experiments.Churn.scenario;
  ch_generation : int;  (** registry generation after the final epoch *)
  ch_rows : Experiments.Churn.epoch_row list;
      (** baseline epoch first, then one row per mutation epoch *)
}

type health_reply = {
  draining : bool;
  instances : string list;  (** registry contents, most recently used first *)
  counters : (string * int) list;  (** server.* counter snapshot *)
}

type stage_latency = {
  stage : string;
      (** [stage.queue_wait] / [stage.compute] / [stage.render] /
          [stage.write], or [latency.<op>] for whole-request latency *)
  s_count : int;
  p50 : float;  (** seconds; quantiles are {!Obs.Hist} estimates *)
  p90 : float;
  p99 : float;
  p999 : float;
  s_max : float;  (** exact maximum observed, [0.] when empty *)
}

type server_stats_reply = {
  uptime_s : float;
  s_draining : bool;
  obs_live : bool;
      (** false under [SMALLWORLD_OBS=0]: counters and gauges stay
          authoritative, but stage histograms and the Prometheus dump
          are zeroed no-op stubs *)
  s_counters : (string * int) list;  (** same snapshot as [health] *)
  gauges : (string * float) list;
      (** [server.queue_depth], [server.inflight],
          [server.registry.size] / [.pinned] / [.cap] *)
  stages : stage_latency list;
  prometheus : string;  (** full Prometheus text dump of the registry *)
}

type response =
  | Loaded of instance_info
  | Sampled of instance_info
  | Routed of route_reply
  | Routed_batch of route_reply list
  | Stats_reply of stats_reply
  | Spilled of spill_info
  | Merged of instance_info
  | Snapshotted of snapshot_info
  | Mutated of mutate_reply
  | Churned of churn_reply
  | Health_reply of health_reply
  | Server_stats_reply of server_stats_reply
  | Drain_ack
  | Failed of Error.t

type reply = { reply_id : int option; response : response }

(** {1 String conversions (shared by every front-end)} *)

val op_of_request : request -> string
(** The wire op name ([load], [route_batch], [stats-server], ...) —
    what spans, access-log lines and latency metrics are keyed on. *)

val op_names : string list
(** Every wire op, in table order — the daemon's op inventory for
    metric pre-registration and docs, read off the same declarative op
    table that drives both codecs. *)

val instance_of_request : request -> string option
(** The registry name a request touches, when it names one. *)

val op_of_response : response -> string
(** The wire op a response answers ([error] for {!Failed}). *)

val protocol_to_string : Greedy_routing.Protocol.t -> string

val protocol_of_string : string -> (Greedy_routing.Protocol.t, Error.t) result
(** Canonical names plus the deprecated aliases ["dfs"] and ["gp"]. *)

val status_to_string : Greedy_routing.Outcome.status -> string
val status_of_string : string -> Greedy_routing.Outcome.status option

val alpha_of_string : string -> (Girg.Params.alpha, Error.t) result
(** ["inf"] / ["infinity"] or a float literal. *)

val parse_jobs : string -> (int, Error.t) result
(** Non-negative integer (0 = all cores); the one validation both CLI
    [--jobs] flags and the env fallback share. *)

val float_arg : float -> string
(** Shortest decimal that parses back to the same double — argument
    lists round-trip floats exactly, like the JSON emitter. *)

(** {1 JSON wire codec} *)

val envelope_to_json : envelope -> Obs.Export.json
val envelope_of_json : Obs.Export.json -> (envelope, Error.t) result

val envelope_of_line : string -> (envelope, Error.t) result
(** Parse one request line as received by the daemon. *)

val request_line : envelope -> string
(** Single-line JSON (no trailing newline) — what a client sends. *)

val reply_to_json : reply -> Obs.Export.json
val reply_of_json : Obs.Export.json -> (reply, Error.t) result

val reply_of_line : string -> (reply, Error.t) result

val reply_line : reply -> string
(** Single-line JSON (no trailing newline) — what the daemon sends. *)

(** {1 Argument-list codec (the CLI front-end)} *)

type exec_opts = {
  output : string option;  (** [--output]/[-o]: where the CLI writes an instance *)
  obs_out : string option;  (** [--obs-out]: JSONL run manifest *)
  events_out : string option;  (** [--events-out]: flight-recorder JSONL *)
  trace_out : string option;
      (** [--trace-out]: where the CLI appends this run's
          [smallworld.trace.v1] record *)
  jobs : int option;  (** [--jobs]/[-j]: worker domains *)
}

val no_exec : exec_opts

val of_args : string list -> (envelope * exec_opts, Error.t) result
(** Parse an argument vector: the leading token selects the op
    ([load], [sample] + model, [route], [route-batch], [stats],
    [merge-shards], [snapshot], [mutate], [churn], [health], [drain]);
    the rest are flags
    from {!schema_json}.  [sample girg --spill-out FILE] selects
    sharded spill generation ({!Gen_shard}).
    Deprecated spellings ([-s], [-t], [-n], [-o], [-j], [-c]) keep
    working through a shim table; an unknown flag fails with
    [bad-request] and the message names the nearest canonical (new)
    spelling.  A bare positional argument after [route], [route-batch]
    or [stats] is shorthand for [--instance]. *)

val to_args : ?exec:exec_opts -> envelope -> string list
(** Canonical argument vector; [of_args (to_args e) = Ok (e, exec)]. *)

val schema_json : unit -> Obs.Export.json
(** The machine-readable v1 surface: schema name
    ["smallworld.api.v1"], every op with its flags (canonical
    spelling, deprecated aliases, type, required, default, doc), and
    the error-code table with exit statuses. *)
