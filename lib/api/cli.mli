(** Shared cmdliner terms for the executables that keep a cmdliner
    front-end ([experiments_cli], [serve]).  One definition of the
    seed / jobs / obs-out flags; the validation is {!V1}'s, so the
    hand-rolled [graphs_cli] parser and the cmdliner binaries reject
    the same inputs with the same messages. *)

val seed : int Cmdliner.Term.t
(** [--seed N], default 42. *)

val jobs : int option Cmdliner.Term.t
(** [-j N] / [--jobs N]: worker domains (0 = all cores). *)

val apply_jobs : int option -> (unit, [> `Msg of string ]) result
(** Validate (via {!V1.parse_jobs}) and apply to {!Parallel.Global}. *)

val obs_out : string option Cmdliner.Term.t
(** [--obs-out FILE]: JSONL run-manifest destination. *)

val with_manifest :
  command:string ->
  seed:int ->
  string option ->
  (unit -> (unit, 'e) result) ->
  (unit, 'e) result
(** Run [f] under a [cli.<command>] span; on success, append one
    manifest line (metrics snapshot + span tree) to the given path. *)
