open Cmdliner

let seed =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")

let jobs =
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Worker domains (0 = all cores).  Overrides SMALLWORLD_JOBS; \
               results are identical for any value.")

let apply_jobs = function
  | None -> Ok ()
  | Some j -> (
      match V1.parse_jobs (string_of_int j) with
      | Ok j -> Ok (Parallel.Global.set_jobs j)
      | Error e -> Error (`Msg (Error.to_string e)))

let obs_out =
  Arg.(value & opt (some string) None & info [ "obs-out" ] ~docv:"FILE"
         ~doc:"Write a JSONL run manifest (span tree + metric snapshot) to $(docv).")

let with_manifest ~command ~seed obs_out f =
  let result, span = Obs.Span.time ~name:("cli." ^ command) f in
  (match (result, obs_out) with
  | Ok (), Some path ->
      Out_channel.with_open_text path (fun oc ->
          output_string oc
            (Obs.Export.manifest_line ~experiment:("cli." ^ command) ~seed ~scale:"cli"
               ~registry:Obs.Metrics.default ~span ());
          output_char oc '\n')
  | _ -> ());
  result
