(** Execution and rendering of route / stats requests against a loaded
    instance — the one implementation behind both [graphs_cli] and the
    daemon, so their outputs are byte-identical by construction.

    [graphs_cli route] prints {!route_text}; the daemon returns it in
    the [text] field of a {!V1.route_reply}.  Neither re-implements the
    formatting. *)

val route_text :
  protocol:Greedy_routing.Protocol.t ->
  outcome:Greedy_routing.Outcome.t ->
  shortest:int option ->
  string
(** The exact bytes the route subcommand has always printed: protocol
    and outcome line, walk line (full walk up to 50 vertices, else the
    hop count), shortest-path line (with stretch when delivered over a
    positive distance, or the disconnected notice).  Every line ends in
    a newline. *)

val route :
  inst:Girg.Instance.t ->
  protocol:Greedy_routing.Protocol.t ->
  ?max_steps:int ->
  source:int ->
  target:int ->
  unit ->
  (V1.route_reply, Error.t) result
(** Run one route (GIRG phi objective, BFS shortest path) and build the
    reply.  Fails with [bad-request] when a vertex is out of range —
    the same check, message included, the CLI applied. *)

val route_batch :
  ?pool:Parallel.Pool.t ->
  inst:Girg.Instance.t ->
  protocol:Greedy_routing.Protocol.t ->
  ?max_steps:int ->
  pairs:(int * int) array ->
  unit ->
  (V1.route_reply list, Error.t) result
(** Route every pair, fanning out over [pool] (default: the shared
    {!Parallel.Global} pool) with the same per-domain memoised
    objective {!Experiments.Workload.run} uses.  Replies come back in
    pair order and each is identical to what {!route} returns for that
    pair alone — routing is deterministic and RNG-free, so the job
    count never shows in the bytes. *)

val resolve_pairs :
  inst:Girg.Instance.t -> V1.pairs_spec -> ((int * int) array, Error.t) result
(** Explicit pairs are bounds-checked; sampled pairs are drawn from a
    fresh [Prng.Rng.create ~seed:pair_seed] substream with
    [Experiments.Workload.sample_pairs_any]/[_giant] — the discipline
    the batch experiments use, so a served batch and a local workload
    see identical pairs. *)

val instantiate : model:V1.model -> seed:int -> Girg.Instance.t
(** Sample a model into a routable instance.  GIRGs sample directly;
    HRGs go through the Section 11 GIRG equivalence (the same mapping
    [graphs_cli gen hrg] has always stored); Kleinberg lattices embed
    with unit weights and lattice positions on the 2-torus, so greedy
    phi-routing on the embedding is lattice-greedy routing.  Generation
    fans out over the shared {!Parallel.Global} pool — callers that may
    run from several domains must serialise (the daemon holds its
    compute lock). *)

val instance_info : name:string -> Girg.Instance.t -> V1.instance_info

val stats : Girg.Instance.t -> V1.stats_reply
(** Structural statistics (components via one BFS sweep). *)
