(* xoshiro256** with SplitMix64 seeding.  References:
   Blackman & Vigna, "Scrambled linear pseudorandom number generators" (2018);
   Steele, Lea & Flood, "Fast splittable pseudorandom number generators"
   (OOPSLA 2014).

   The state is four 64-bit words, but storing them as [int64] record
   fields makes every draw allocate: each [Int64] operation boxes its
   result, and even a field assignment must box the value it stores —
   about fifteen allocations per [bits64] call on the classic native
   compiler.  The generator is the innermost loop of every sampler in
   the repository, so each word is instead kept as two immediate native
   ints holding its unsigned 32-bit halves, and the xoshiro step is
   written longhand on the halves: xors are per-half, the shifts and
   rotations cross words explicitly, and the two small-constant
   multiplies (by 5 and 9) propagate one carry.  All intermediates fit
   comfortably below 2^62, so native int arithmetic computes them
   exactly and a draw allocates nothing.  The streams are bit-identical
   to the boxed implementation (the test suite checks this against an
   embedded [Int64] reference). *)

type t = {
  mutable s0h : int;
  mutable s0l : int;
  mutable s1h : int;
  mutable s1l : int;
  mutable s2h : int;
  mutable s2l : int;
  mutable s3h : int;
  mutable s3l : int;
  (* Halves of the last output word, filled by [step].  Results are
     returned through these int fields rather than a tuple so the hot
     consumers ([bits62], [unit_float], ...) stay allocation-free. *)
  mutable oh : int;
  mutable ol : int;
}

let mask32 = 0xFFFFFFFF
let golden_gamma = 0x9E3779B97F4A7C15L

(* The SplitMix64 finalizer alone: a bijective mixing of the 64-bit
   space.  Used to hash deterministic task keys (cell codes, route
   indices) into seeds for independent substreams.  Seeding is cold —
   once per substream, not per draw — so the boxed [Int64] form is kept
   for clarity. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* One SplitMix64 step: advance [state] by the golden gamma and mix. *)
let splitmix64_next state =
  state := Int64.add !state golden_gamma;
  mix64 !state

let hi32 x = Int64.to_int (Int64.shift_right_logical x 32)
let lo32 x = Int64.to_int (Int64.logand x 0xFFFFFFFFL)

let of_seed64 seed64 =
  let st = ref seed64 in
  let s0 = splitmix64_next st in
  let s1 = splitmix64_next st in
  let s2 = splitmix64_next st in
  let s3 = splitmix64_next st in
  {
    s0h = hi32 s0;
    s0l = lo32 s0;
    s1h = hi32 s1;
    s1l = lo32 s1;
    s2h = hi32 s2;
    s2l = lo32 s2;
    s3h = hi32 s3;
    s3l = lo32 s3;
    oh = 0;
    ol = 0;
  }

let create ~seed = of_seed64 (Int64.of_int seed)

let copy t =
  {
    s0h = t.s0h;
    s0l = t.s0l;
    s1h = t.s1h;
    s1l = t.s1l;
    s2h = t.s2h;
    s2l = t.s2l;
    s3h = t.s3h;
    s3l = t.s3l;
    oh = t.oh;
    ol = t.ol;
  }

(* One xoshiro256** step on the half-word state:
     result = rotl(s1 * 5, 7) * 9
     tmp    = s1 << 17
     s2 ^= s0;  s3 ^= s1;  s1 ^= s2;  s0 ^= s3;  s2 ^= tmp;  s3 = rotl(s3, 45)
   The output halves land in [t.oh]/[t.ol].  Multiplying a 32-bit half
   by 5 or 9 stays below 2^36, so the products are exact and the carry
   is just the bits above 32. *)
let step t =
  let s1h = t.s1h and s1l = t.s1l in
  (* result = rotl64 (s1 * 5) 7 * 9 *)
  let p = s1l * 5 in
  let mh = ((s1h * 5) + (p lsr 32)) land mask32 and ml = p land mask32 in
  let rh = ((mh lsl 7) lor (ml lsr 25)) land mask32
  and rl = ((ml lsl 7) lor (mh lsr 25)) land mask32 in
  let q = rl * 9 in
  t.oh <- ((rh * 9) + (q lsr 32)) land mask32;
  t.ol <- q land mask32;
  (* tmp = s1 lsl 17 *)
  let th = ((s1h lsl 17) lor (s1l lsr 15)) land mask32 and tl = (s1l lsl 17) land mask32 in
  let s2h = t.s2h lxor t.s0h and s2l = t.s2l lxor t.s0l in
  let s3h = t.s3h lxor s1h and s3l = t.s3l lxor s1l in
  let s1h' = s1h lxor s2h and s1l' = s1l lxor s2l in
  let s0h = t.s0h lxor s3h and s0l = t.s0l lxor s3l in
  let s2h = s2h lxor th and s2l = s2l lxor tl in
  (* rotl64 x 45 = rotl64 (swap halves of x) 13 *)
  let xh = s3l and xl = s3h in
  let s3h = ((xh lsl 13) lor (xl lsr 19)) land mask32
  and s3l = ((xl lsl 13) lor (xh lsr 19)) land mask32 in
  t.s0h <- s0h;
  t.s0l <- s0l;
  t.s1h <- s1h';
  t.s1l <- s1l';
  t.s2h <- s2h;
  t.s2l <- s2l;
  t.s3h <- s3h;
  t.s3l <- s3l

(* [of_seed64 (mix64 (add (mix64 (add (mix64 (add base a)) b)) c))] on
   unboxed halves.  This is the substream derivation the parallel
   samplers run once per task — tens of thousands of times per
   generated graph — so the boxed [Int64] spelling (seven finalizer
   applications, each a dozen allocations) was a measurable slice of a
   sampling pass.  The 64-bit adds carry across the halves; the
   finalizer's constant multiplies are assembled from 16-bit limbs
   exactly as in the boxed code (only the low 32 bits of each partial
   product are needed, and native ints compute those exactly).  The
   int refs below hold immediates, so the whole derivation allocates
   nothing beyond the returned state record. *)
let of_mixed_triple ~base ~a ~b ~c =
  let zh = ref (hi32 base) and zl = ref (lo32 base) in
  (* z <- z + Int64.of_int k *)
  let add k =
    let s = !zl + (k land mask32) in
    zl := s land mask32;
    zh := (!zh + ((k asr 32) land mask32) + (s lsr 32)) land mask32
  in
  (* z <- z + golden_gamma (0x9E3779B9_7F4A7C15) *)
  let add_gamma () =
    let s = !zl + 0x7F4A7C15 in
    zl := s land mask32;
    zh := (!zh + 0x9E3779B9 + (s lsr 32)) land mask32
  in
  (* z <- mix64 z *)
  let mix () =
    (* z ^= z >>> 30 *)
    let l = !zl lxor ((!zl lsr 30) lor ((!zh lsl 2) land mask32)) in
    let h = !zh lxor (!zh lsr 30) in
    (* z *= 0xBF58476D1CE4E5B9 *)
    let a0 = l land 0xFFFF in
    let a1 = l lsr 16 in
    let p00 = a0 * 0xE5B9 in
    let mid = (p00 lsr 16) + (a1 * 0xE5B9) + (a0 * 0x1CE4) in
    let lo = (p00 land 0xFFFF) lor ((mid land 0xFFFF) lsl 16) in
    let hi =
      ((mid lsr 16) + (a1 * 0x1CE4) + ((l * 0xBF58476D) land mask32)
      + ((h * 0x1CE4E5B9) land mask32))
      land mask32
    in
    (* z ^= z >>> 27 *)
    let l = lo lxor ((lo lsr 27) lor ((hi lsl 5) land mask32)) in
    let h = hi lxor (hi lsr 27) in
    (* z *= 0x94D049BB133111EB *)
    let a0 = l land 0xFFFF in
    let a1 = l lsr 16 in
    let p00 = a0 * 0x11EB in
    let mid = (p00 lsr 16) + (a1 * 0x11EB) + (a0 * 0x1331) in
    let lo = (p00 land 0xFFFF) lor ((mid land 0xFFFF) lsl 16) in
    let hi =
      ((mid lsr 16) + (a1 * 0x1331) + ((l * 0x94D049BB) land mask32)
      + ((h * 0x133111EB) land mask32))
      land mask32
    in
    (* z ^= z >>> 31 *)
    zl := lo lxor ((lo lsr 31) lor ((hi lsl 1) land mask32));
    zh := hi lxor (hi lsr 31)
  in
  add a;
  mix ();
  add b;
  mix ();
  add c;
  mix ();
  (* of_seed64: four SplitMix64 steps — the state advances only by the
     gamma; each output is the finalizer of the advanced state. *)
  add_gamma ();
  let st1h = !zh and st1l = !zl in
  mix ();
  let s0h = !zh and s0l = !zl in
  zh := st1h;
  zl := st1l;
  add_gamma ();
  let st2h = !zh and st2l = !zl in
  mix ();
  let s1h = !zh and s1l = !zl in
  zh := st2h;
  zl := st2l;
  add_gamma ();
  let st3h = !zh and st3l = !zl in
  mix ();
  let s2h = !zh and s2l = !zl in
  zh := st3h;
  zl := st3l;
  add_gamma ();
  mix ();
  { s0h; s0l; s1h; s1l; s2h; s2l; s3h = !zh; s3l = !zl; oh = 0; ol = 0 }

let bits64 t =
  step t;
  Int64.logor (Int64.shift_left (Int64.of_int t.oh) 32) (Int64.of_int t.ol)

let split t = of_seed64 (bits64 t)

(* Top 62 bits as a non-negative OCaml int. *)
let bits62 t =
  step t;
  (t.oh lsl 30) lor (t.ol lsr 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  if bound land (bound - 1) = 0 then bits62 t land (bound - 1)
  else begin
    (* Rejection sampling to avoid modulo bias. *)
    let max62 = (1 lsl 62) - 1 in
    let limit = max62 - (max62 mod bound) in
    let rec draw () =
      let v = bits62 t in
      if v >= limit then draw () else v mod bound
    in
    draw ()
  end

let two_pow_53 = 9007199254740992.0 (* 2^53 *)

let unit_float t =
  step t;
  float_of_int ((t.oh lsl 21) lor (t.ol lsr 11)) /. two_pow_53

let unit_float_pos t = 1.0 -. unit_float t
let float t bound = bound *. unit_float t

let bool t =
  step t;
  t.oh land 0x80000000 <> 0
