(* xoshiro256** with SplitMix64 seeding.  References:
   Blackman & Vigna, "Scrambled linear pseudorandom number generators" (2018);
   Steele, Lea & Flood, "Fast splittable pseudorandom number generators"
   (OOPSLA 2014). *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* The SplitMix64 finalizer alone: a bijective mixing of the 64-bit
   space.  Used to hash deterministic task keys (cell codes, route
   indices) into seeds for independent substreams. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* One SplitMix64 step: advance [state] by the golden gamma and mix. *)
let splitmix64_next state =
  state := Int64.add !state golden_gamma;
  mix64 !state

let of_seed64 seed64 =
  let st = ref seed64 in
  let s0 = splitmix64_next st in
  let s1 = splitmix64_next st in
  let s2 = splitmix64_next st in
  let s3 = splitmix64_next st in
  { s0; s1; s2; s3 }

let create ~seed = of_seed64 (Int64.of_int seed)

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t = of_seed64 (bits64 t)

(* Top 62 bits as a non-negative OCaml int. *)
let bits62 t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  if bound land (bound - 1) = 0 then bits62 t land (bound - 1)
  else begin
    (* Rejection sampling to avoid modulo bias. *)
    let max62 = (1 lsl 62) - 1 in
    let limit = max62 - (max62 mod bound) in
    let rec draw () =
      let v = bits62 t in
      if v >= limit then draw () else v mod bound
    in
    draw ()
  end

let two_pow_53 = 9007199254740992.0 (* 2^53 *)

let unit_float t =
  let bits53 = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int bits53 /. two_pow_53

let unit_float_pos t = 1.0 -. unit_float t

let float t bound = bound *. unit_float t

let bool t = Int64.compare (bits64 t) 0L < 0
