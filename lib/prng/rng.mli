(** Deterministic, splittable pseudo-random number generator.

    The generator is xoshiro256** seeded through SplitMix64, a combination
    with good statistical quality and a tiny state.  All randomness in this
    repository flows through values of type {!t}, so every experiment is
    reproducible from a single integer seed.

    Generators are mutable: drawing advances the state in place.  Use
    {!split} to derive statistically independent substreams (e.g. one for
    vertex weights, one for positions, one for edge coins). *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] builds a generator from a 63-bit seed.  Equal seeds yield
    equal streams. *)

val split : t -> t
(** [split rng] draws from [rng] to seed a fresh, statistically independent
    generator.  [rng] itself advances, so subsequent draws from [rng] and the
    child do not collide. *)

val of_seed64 : int64 -> t
(** [of_seed64 s] seeds a generator from all 64 bits of [s] through four
    SplitMix64 steps.  [create ~seed] is [of_seed64 (Int64.of_int seed)]. *)

val mix64 : int64 -> int64
(** The SplitMix64 finalizer: a fixed bijective mixing of the 64-bit
    space.  Chain it over the components of a deterministic key —
    [mix64 (add (mix64 (add base a)) b)] — to derive collision-resistant
    seeds for {!of_seed64} substreams whose identity depends only on the
    key, not on how many other streams exist.  This is the derivation
    the parallel samplers use to stay bit-reproducible for any job
    count. *)

val of_mixed_triple : base:int64 -> a:int -> b:int -> c:int -> t
(** [of_mixed_triple ~base ~a ~b ~c] is
    [of_seed64 (mix64 (Int64.add (mix64 (Int64.add (mix64 (Int64.add base
    (Int64.of_int a))) (Int64.of_int b))) (Int64.of_int c)))] — the
    three-component task-key derivation of the parallel samplers —
    computed on native ints so the only allocation is the returned
    generator state. *)

val copy : t -> t
(** [copy rng] duplicates the current state; the copy replays the same
    future stream as [rng]. *)

val bits64 : t -> int64
(** [bits64 rng] returns 64 uniformly random bits.  The result is a
    boxed [int64]; hot loops should prefer {!bits62}, {!int} or
    {!unit_float}, which draw without allocating. *)

val bits62 : t -> int
(** [bits62 rng] is the top 62 bits of the next word as a non-negative
    native int — one allocation-free draw. *)

val int : t -> int -> int
(** [int rng bound] is uniform on [0, bound).  @raise Invalid_argument if
    [bound <= 0]. *)

val float : t -> float -> float
(** [float rng bound] is uniform on [0, bound), using 53 random bits. *)

val unit_float : t -> float
(** [unit_float rng] is uniform on [0, 1). *)

val unit_float_pos : t -> float
(** [unit_float_pos rng] is uniform on (0, 1]; safe as a [log] argument. *)

val bool : t -> bool
(** [bool rng] is a fair coin flip. *)
