let id = "E1"
let title = "Success probability of greedy routing (Theorem 3.1)"

let claim =
  "Greedy routing succeeds with probability Omega(1): the success rate over \
   random s-t pairs is bounded away from 0 and flat in n, for every beta in \
   (2,3) and every alpha > 1 (including the threshold model)."

let run ctx =
  let sizes =
    Context.pick ctx ~quick:[ 2048; 4096; 8192 ]
      ~standard:[ 4096; 8192; 16384; 32768; 65536 ]
  in
  let pairs_per_size = Context.pick ctx ~quick:150 ~standard:400 in
  let configs =
    [
      (2.3, Girg.Params.Finite 1.5);
      (2.5, Girg.Params.Finite 2.0);
      (2.8, Girg.Params.Finite 2.0);
      (2.5, Girg.Params.Infinite);
    ]
  in
  let table =
    Stats.Table.create
      ~title:(id ^ ": " ^ title)
      ~columns:
        ([ "beta"; "alpha" ]
        @ List.map (fun n -> Printf.sprintf "n=%d" n) sizes
        @ [ "paper" ])
  in
  List.iteri
    (fun ci (beta, alpha) ->
      let rates =
        List.mapi
          (fun ni n ->
            let rng = Context.rng ctx ~salt:(1000 + (100 * ci) + ni) in
            let params = Girg.Params.make ~dim:2 ~beta ~alpha ~c:0.25 ~n () in
            let inst =
              Context.phase ctx "generate" (fun () -> Girg.Instance.generate ~rng params)
            in
            let pairs =
              Workload.sample_pairs_any ~rng
                ~n:(Sparse_graph.Graph.n inst.graph)
                ~count:pairs_per_size
            in
            let res =
              Context.phase ctx "route" (fun () ->
                  Workload.run ~graph:inst.graph
                    ~objective_for:(fun ~target ->
                      Greedy_routing.Objective.girg_phi inst ~target)
                    ~protocol:Greedy_routing.Protocol.Greedy ~pairs ())
            in
            Workload.success_rate res)
          sizes
      in
      Context.phase ctx "aggregate" (fun () ->
          Stats.Table.add_row table
            ([ Printf.sprintf "%.1f" beta; Girg.Params.alpha_to_string alpha ]
            @ List.map (fun r -> Printf.sprintf "%.3f" r) rates
            @ [ "Omega(1), flat in n" ])))
    configs;
  Stats.Table.note table
    "s-t pairs are uniform over ALL vertices (isolated targets allowed), so \
     rates below 1 are expected; the claim is flatness in n, not a value.";
  [ table ]
