let id = "E18"
let title = "Greedy routing on live graphs under churn"

let claim =
  "Greedy routing keeps working while the graph changes underneath it: \
   epoch-based copy-on-write versions let every route run against one \
   consistent snapshot, so uniform node churn only degrades delivery \
   gracefully (the geometry is unchanged and surviving links still point \
   the right way), while adversarially removing the heaviest vertices \
   hurts far more per event — the weight-aware objective leans on exactly \
   those hubs.  With no structural churn at all, a Milgram-style per-hop \
   quit probability caps chain length, mirroring the experimental \
   attrition the paper's introduction recounts."

let run ctx =
  let n = Context.pick ctx ~quick:4096 ~standard:16384 in
  let count = Context.pick ctx ~quick:150 ~standard:400 in
  let rng = Context.rng ctx ~salt:18_000 in
  let params = Girg.Params.make ~dim:2 ~beta:2.5 ~c:0.25 ~n () in
  let inst = Girg.Instance.generate ~rng params in
  let config scenario ~events ~quit : Churn.config =
    {
      scenario;
      epochs = 3;
      events;
      quit;
      seed = ctx.seed + 18;
      count;
      pair_seed = ctx.seed + 1_800;
      protocol = Greedy_routing.Protocol.Greedy;
      max_steps = None;
    }
  in
  let scenario_table cfg note =
    let _final, rows = Churn.run_local cfg inst in
    let table = Churn.table cfg rows in
    Stats.Table.note table note;
    table
  in
  [
    scenario_table
      (config Churn.Uniform ~events:(n / 50) ~quit:0.0)
      "each event flips a uniformly drawn vertex; epoch 0 is the \
       untouched baseline.";
    scenario_table
      (config Churn.Adversarial ~events:(n / 400) ~quit:0.0)
      "each epoch removes the highest-weight live vertices (targeted \
       attack); far fewer events than uniform churn, much larger effect.";
    scenario_table
      (config Churn.Milgram ~events:0 ~quit:0.15)
      "no structural churn; every holder independently gives up with \
       probability 0.15 per forwarding step.";
  ]
