type results = {
  attempted : int;
  delivered : int;
  dead_end : int;
  exhausted : int;
  cutoff : int;
  steps : float array;
  visited : float array;
  stretches : float array;
}

let success_rate r =
  if r.attempted = 0 then nan else float_of_int r.delivered /. float_of_int r.attempted

let failure_rate r = 1.0 -. success_rate r

let mean_steps r = if Array.length r.steps = 0 then nan else Stats.Summary.mean r.steps

let mean_stretch r =
  if Array.length r.stretches = 0 then nan else Stats.Summary.mean r.stretches

let sample_pairs_any ~rng ~n ~count =
  if n < 2 then invalid_arg "Workload.sample_pairs_any: need n >= 2";
  Array.init count (fun _ -> Prng.Dist.sample_distinct_pair rng ~n)

let pairs_from_pool ~rng ~pool ~count =
  Array.init count (fun _ ->
      let i, j = Prng.Dist.sample_distinct_pair rng ~n:(Array.length pool) in
      (pool.(i), pool.(j)))

let sample_pairs_giant ~rng ~graph ~count =
  let comps = Sparse_graph.Components.compute graph in
  let giant = Sparse_graph.Components.giant_members comps in
  if Array.length giant < 2 then
    sample_pairs_any ~rng ~n:(Sparse_graph.Graph.n graph) ~count
  else pairs_from_pool ~rng ~pool:giant ~count

let sample_pairs_heavy ~rng ~weights ~min_weight ~count =
  let pool = ref [] in
  Array.iteri (fun v w -> if w >= min_weight then pool := v :: !pool) weights;
  let pool = Array.of_list !pool in
  if Array.length pool < 2 then
    invalid_arg "Workload.sample_pairs_heavy: fewer than two heavy vertices";
  pairs_from_pool ~rng ~pool ~count

(* Routes are mutually independent and RNG-free (greedy ties break
   deterministically), so a batch fans out over the pool one task per
   pair.  Each task records a compact slot; aggregation then replays the
   slots sequentially in pair order, preserving exactly the legacy loop's
   prepend order, so [results] — counts and the order of every array —
   is bit-identical for any job count.  A stretch of [nan] encodes "not
   computed / BFS found no usable distance". *)

(* One memo scratch per domain, reused across every route that domain
   executes: protocols that revisit vertices (patching DFS, gravity
   pressure) then pay one objective evaluation per distinct vertex per
   route, and the backing arrays are allocated once per domain rather
   than once per route. *)
let memo_key = Domain.DLS.new_key (fun () -> Greedy_routing.Objective.Memo.create ())

let memoized ~n objective =
  Greedy_routing.Objective.Memo.wrap (Domain.DLS.get memo_key) ~n objective

let run ?pool ~graph ~objective_for ~protocol ?max_steps ?(with_stretch = false) ~pairs () =
  Obs.Span.with_ ~name:"exp.route" (fun () ->
  let pool = match pool with Some p -> p | None -> Parallel.Global.get () in
  let n = Sparse_graph.Graph.n graph in
  let route i =
    let source, target = pairs.(i) in
    let objective = memoized ~n (objective_for ~target) in
    let outcome =
      Greedy_routing.Protocol.run protocol ~graph ~objective ~source ?max_steps ()
    in
    let stretch =
      match outcome.Greedy_routing.Outcome.status with
      | Greedy_routing.Outcome.Delivered when with_stretch -> (
          match Sparse_graph.Bfs.distance graph ~source ~target with
          | Some d when d > 0 -> float_of_int outcome.steps /. float_of_int d
          | Some _ | None -> nan)
      | _ -> nan
    in
    (outcome.Greedy_routing.Outcome.status, outcome.steps, outcome.visited, stretch)
  in
  let slots = Parallel.Pool.map pool ~n:(Array.length pairs) route in
  (* Counting pass, then preallocated arrays filled back-to-front: the
     legacy prepend-then-[Array.of_list] loop produced the arrays in
     reverse slot order, and that exact order is pinned by golden runs. *)
  let delivered = ref 0 and dead_end = ref 0 and exhausted = ref 0 and cutoff = ref 0 in
  let n_stretch = ref 0 in
  Array.iter
    (fun ((status : Greedy_routing.Outcome.status), _, _, stretch) ->
      match status with
      | Greedy_routing.Outcome.Delivered ->
          incr delivered;
          if not (Float.is_nan stretch) then incr n_stretch
      | Dead_end -> incr dead_end
      | Exhausted -> incr exhausted
      | Cutoff -> incr cutoff)
    slots;
  let steps = Array.make !delivered 0.0 in
  let visited = Array.make !delivered 0.0 in
  let stretches = Array.make !n_stretch 0.0 in
  let si = ref (!delivered - 1) in
  let ti = ref (!n_stretch - 1) in
  Array.iter
    (fun ((status : Greedy_routing.Outcome.status), route_steps, route_visited, stretch) ->
      match status with
      | Greedy_routing.Outcome.Delivered ->
          steps.(!si) <- float_of_int route_steps;
          visited.(!si) <- float_of_int route_visited;
          decr si;
          if not (Float.is_nan stretch) then begin
            stretches.(!ti) <- stretch;
            decr ti
          end
      | Dead_end | Exhausted | Cutoff -> ())
    slots;
  {
    attempted = Array.length pairs;
    delivered = !delivered;
    dead_end = !dead_end;
    exhausted = !exhausted;
    cutoff = !cutoff;
    steps;
    visited;
    stretches;
  })
