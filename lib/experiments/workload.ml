type results = {
  attempted : int;
  delivered : int;
  dead_end : int;
  exhausted : int;
  cutoff : int;
  steps : float array;
  visited : float array;
  stretches : float array;
}

let success_rate r =
  if r.attempted = 0 then nan else float_of_int r.delivered /. float_of_int r.attempted

let failure_rate r = 1.0 -. success_rate r

let mean_steps r = if Array.length r.steps = 0 then nan else Stats.Summary.mean r.steps

let mean_stretch r =
  if Array.length r.stretches = 0 then nan else Stats.Summary.mean r.stretches

let sample_pairs_any ~rng ~n ~count =
  if n < 2 then invalid_arg "Workload.sample_pairs_any: need n >= 2";
  Array.init count (fun _ -> Prng.Dist.sample_distinct_pair rng ~n)

let pairs_from_pool ~rng ~pool ~count =
  Array.init count (fun _ ->
      let i, j = Prng.Dist.sample_distinct_pair rng ~n:(Array.length pool) in
      (pool.(i), pool.(j)))

let sample_pairs_giant ~rng ~graph ~count =
  let comps = Sparse_graph.Components.compute graph in
  let giant = Sparse_graph.Components.giant_members comps in
  if Array.length giant < 2 then
    sample_pairs_any ~rng ~n:(Sparse_graph.Graph.n graph) ~count
  else pairs_from_pool ~rng ~pool:giant ~count

let sample_pairs_heavy ~rng ~weights ~min_weight ~count =
  let pool = ref [] in
  Array.iteri (fun v w -> if w >= min_weight then pool := v :: !pool) weights;
  let pool = Array.of_list !pool in
  if Array.length pool < 2 then
    invalid_arg "Workload.sample_pairs_heavy: fewer than two heavy vertices";
  pairs_from_pool ~rng ~pool ~count

(* Routes are mutually independent and RNG-free (greedy ties break
   deterministically), so a batch fans out over the pool one task per
   pair.  Each task records a compact slot; aggregation then replays the
   slots sequentially in pair order with exactly the legacy loop's
   prepend logic, so [results] — counts and the order of every array —
   is bit-identical for any job count.  A stretch of [nan] encodes "not
   computed / BFS found no usable distance". *)
let run ?pool ~graph ~objective_for ~protocol ?max_steps ?(with_stretch = false) ~pairs () =
  Obs.Span.with_ ~name:"exp.route" (fun () ->
  let pool = match pool with Some p -> p | None -> Parallel.Global.get () in
  let route i =
    let source, target = pairs.(i) in
    let objective = objective_for ~target in
    let outcome =
      Greedy_routing.Protocol.run protocol ~graph ~objective ~source ?max_steps ()
    in
    let stretch =
      match outcome.Greedy_routing.Outcome.status with
      | Greedy_routing.Outcome.Delivered when with_stretch -> (
          match Sparse_graph.Bfs.distance graph ~source ~target with
          | Some d when d > 0 -> float_of_int outcome.steps /. float_of_int d
          | Some _ | None -> nan)
      | _ -> nan
    in
    (outcome.Greedy_routing.Outcome.status, outcome.steps, outcome.visited, stretch)
  in
  let slots = Parallel.Pool.map pool ~n:(Array.length pairs) route in
  let delivered = ref 0 and dead_end = ref 0 and exhausted = ref 0 and cutoff = ref 0 in
  let steps = ref [] and visited = ref [] and stretches = ref [] in
  Array.iter
    (fun (status, route_steps, route_visited, stretch) ->
      match status with
      | Greedy_routing.Outcome.Delivered ->
          incr delivered;
          steps := float_of_int route_steps :: !steps;
          visited := float_of_int route_visited :: !visited;
          if not (Float.is_nan stretch) then stretches := stretch :: !stretches
      | Dead_end -> incr dead_end
      | Exhausted -> incr exhausted
      | Cutoff -> incr cutoff)
    slots;
  {
    attempted = Array.length pairs;
    delivered = !delivered;
    dead_end = !dead_end;
    exhausted = !exhausted;
    cutoff = !cutoff;
    steps = Array.of_list !steps;
    visited = Array.of_list !visited;
    stretches = Array.of_list !stretches;
  })
