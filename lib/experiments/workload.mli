(** Routing workloads: sample source–target pairs, run a protocol over them,
    aggregate the outcome statistics every experiment reports. *)

type results = {
  attempted : int;
  delivered : int;
  dead_end : int;
  exhausted : int;
  cutoff : int;
  steps : float array;  (** per delivered run *)
  visited : float array;  (** per delivered run *)
  stretches : float array;  (** per delivered run, only when requested *)
}

val success_rate : results -> float
val failure_rate : results -> float

val mean_steps : results -> float
(** Mean steps over delivered runs ([nan] if none). *)

val mean_stretch : results -> float

val sample_pairs_any :
  rng:Prng.Rng.t -> n:int -> count:int -> (int * int) array
(** Uniform distinct pairs over all vertices (the adversary may thus pick
    isolated targets — matching Theorem 3.1's setting). *)

val sample_pairs_giant :
  rng:Prng.Rng.t -> graph:Sparse_graph.Graph.t -> count:int -> (int * int) array
(** Uniform distinct pairs within the largest component — the conditioning
    of Theorems 3.3/3.4.  Falls back to {!sample_pairs_any} when the giant
    has fewer than two vertices. *)

val sample_pairs_heavy :
  rng:Prng.Rng.t ->
  weights:float array ->
  min_weight:float ->
  count:int ->
  (int * int) array
(** Pairs among vertices of weight at least [min_weight] (Theorem 3.2 (ii)).
    @raise Invalid_argument if fewer than two such vertices exist. *)

val memoized : n:int -> Greedy_routing.Objective.t -> Greedy_routing.Objective.t
(** Wrap an objective in the calling domain's reusable memo scratch
    (one per domain, shared across routes) — the discipline {!run}'s
    tasks use.  The server's batch executor routes through the same
    helper, so served batches and local workloads evaluate objectives
    identically. *)

val run :
  ?pool:Parallel.Pool.t ->
  graph:Sparse_graph.Graph.t ->
  objective_for:(target:int -> Greedy_routing.Objective.t) ->
  protocol:Greedy_routing.Protocol.t ->
  ?max_steps:int ->
  ?with_stretch:bool ->
  pairs:(int * int) array ->
  unit ->
  results
(** Route each pair, optionally computing the stretch (greedy path length /
    BFS distance) of delivered runs.

    Routes fan out over [pool] (the shared {!Parallel.Global} pool when
    omitted), one task per pair; [objective_for] must therefore be safe
    to call from several domains at once (every bundled objective is —
    they only read the graph and position arrays).  Aggregation happens
    sequentially in pair order, so the returned {!results} — including
    the order of [steps]/[visited]/[stretches] — is bit-identical for
    any job count. *)
