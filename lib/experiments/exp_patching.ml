let id = "E5"
let title = "Patching: guaranteed success at unchanged cost (Theorem 3.4)"

let claim =
  "Both (P1)-(P3) patching protocols (Phi-DFS = Algorithm 2, and the \
   history-based SMTP-style protocol) deliver 100% of same-component pairs \
   while keeping the (2+o(1))/|log(beta-2)| log log n step bound and \
   stretch 1+o(1)."

let protocols =
  [
    Greedy_routing.Protocol.Greedy;
    Greedy_routing.Protocol.Patch_dfs;
    Greedy_routing.Protocol.Patch_history;
  ]

let run ctx =
  let sizes = Context.pick ctx ~quick:[ 4096 ] ~standard:[ 8192; 32768; 131072 ] in
  let pairs_per_size = Context.pick ctx ~quick:120 ~standard:250 in
  (* Sparser than E3 so that pure greedy actually fails sometimes. *)
  let beta = 2.5 and c = 0.12 in
  let table =
    Stats.Table.create
      ~title:(id ^ ": " ^ title)
      ~columns:
        [ "n"; "protocol"; "success"; "median steps"; "p95"; "pred"; "med stretch"; "paper" ]
  in
  List.iteri
    (fun ni n ->
      let rng = Context.rng ctx ~salt:(5000 + ni) in
      let params = Girg.Params.make ~dim:2 ~beta ~c ~n () in
      let inst =
        Context.phase ctx "generate" (fun () -> Girg.Instance.generate ~rng params)
      in
      let pairs = Workload.sample_pairs_giant ~rng ~graph:inst.graph ~count:pairs_per_size in
      List.iter
        (fun protocol ->
          let res =
            Context.phase ctx
              (if protocol = Greedy_routing.Protocol.Greedy then "route" else "patching")
              (fun () ->
                Workload.run ~graph:inst.graph
                  ~objective_for:(fun ~target -> Greedy_routing.Objective.girg_phi inst ~target)
                  ~protocol ~with_stretch:true ~pairs ())
          in
          let is_greedy = protocol = Greedy_routing.Protocol.Greedy in
          let median xs =
            if Array.length xs = 0 then "nan"
            else Printf.sprintf "%.1f" (Stats.Summary.percentile xs ~p:0.5)
          in
          Stats.Table.add_row table
            [
              string_of_int n;
              Greedy_routing.Protocol.name protocol;
              Printf.sprintf "%.3f" (Workload.success_rate res);
              median res.steps;
              (if Array.length res.steps = 0 then "nan"
               else Printf.sprintf "%.0f" (Stats.Summary.percentile res.steps ~p:0.95));
              Printf.sprintf "%.2f" (Exp_length.predicted_length ~beta ~n);
              median res.stretches;
              (if is_greedy then "Omega(1) success" else "success = 1, O(loglog n) steps");
            ])
        protocols)
    sizes;
  Stats.Table.note table
    "same-component pairs; any success < 1 for phi-dfs/history would falsify \
     Theorem 3.4.  Medians shown: phi-dfs's mean is dominated by rare hard \
     instances where discarded inner DFSs are re-explored (poly, per (P3)).";
  [ table ]
