(** Execution context shared by all experiments. *)

type scale =
  | Quick  (** smoke-test sizes: seconds per experiment *)
  | Standard  (** paper-reproduction sizes: tens of seconds per experiment *)

type t = { seed : int; scale : scale }

val make : ?seed:int -> ?scale:scale -> unit -> t
(** Defaults: [seed = 42], [scale = Standard]. *)

val pick : t -> quick:'a -> standard:'a -> 'a

val rng : t -> salt:int -> Prng.Rng.t
(** Independent generator derived from the context seed and a caller-chosen
    salt, so experiments do not perturb each other's randomness. *)

val scale_name : t -> string
(** ["quick"] or ["standard"] — as written into run manifests. *)

val phase : t -> string -> (unit -> 'a) -> 'a
(** [phase ctx name f] runs [f] inside an [Obs.Span] named
    ["exp.phase." ^ name]; experiments use it to attribute time to their
    generation / routing / patching / aggregation phases. *)
