type scale = Quick | Standard

type t = { seed : int; scale : scale }

let make ?(seed = 42) ?(scale = Standard) () = { seed; scale }

let pick t ~quick ~standard = match t.scale with Quick -> quick | Standard -> standard

let scale_name t = match t.scale with Quick -> "quick" | Standard -> "standard"

let rng t ~salt = Prng.Rng.create ~seed:((t.seed * 1_000_003) + salt)

let phase (_ : t) name f = Obs.Span.with_ ~name:("exp.phase." ^ name) f
