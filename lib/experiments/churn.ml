(* Greedy routing under churn: drive a mutation scenario over a live
   instance, one epoch at a time, and measure delivery after every epoch.

   Everything is keyed on (seed, epoch) through disjoint
   [Prng.Rng.of_mixed_triple] substreams — channel 0 plans mutations,
   channel 1 samples measurement pairs, channel 2 draws Milgram quit
   coins — so a scenario replays bit-identically regardless of job
   count or graph backing. *)

module G = Sparse_graph.Graph

type scenario =
  | Uniform  (** each event flips a uniformly drawn vertex (leave/rejoin) *)
  | Adversarial  (** each epoch removes the highest-weight live vertices *)
  | Milgram  (** no structural churn; per-hop quit probability instead *)

let scenario_to_string = function
  | Uniform -> "uniform"
  | Adversarial -> "adversarial"
  | Milgram -> "milgram"

let scenario_of_string = function
  | "uniform" -> Ok Uniform
  | "adversarial" -> Ok Adversarial
  | "milgram" -> Ok Milgram
  | s -> Error (Printf.sprintf "unknown churn scenario %S (uniform | adversarial | milgram)" s)

type config = {
  scenario : scenario;
  epochs : int;  (** mutation rounds after the baseline measurement *)
  events : int;  (** structural events per epoch (ignored by [Milgram]) *)
  quit : float;  (** per-hop quit probability, 0.0 disables *)
  seed : int;  (** keys mutation planning, resampling and quit coins *)
  count : int;  (** measurement pairs per epoch *)
  pair_seed : int;  (** keys pair sampling, independently of [seed] *)
  protocol : Greedy_routing.Protocol.t;
  max_steps : int option;
}

type epoch_row = {
  epoch : int;
  live : int;
  edges : int;
  attempted : int;
  delivered : int;
  mean_steps : float;  (** over delivered runs; [nan] if none *)
  mean_stretch : float;  (** over delivered runs; [nan] if none *)
}

(* Plan the structural events of one epoch against the current graph.
   Pure: returns the op list without touching the instance. *)
let plan cfg ~(inst : Girg.Instance.t) ~epoch =
  let g = inst.graph in
  let n = G.n g in
  match cfg.scenario with
  | Milgram -> []
  | Uniform ->
      let rng =
        Prng.Rng.of_mixed_triple
          ~base:(Prng.Rng.mix64 (Int64.of_int cfg.seed))
          ~a:epoch ~b:0 ~c:0
      in
      (* Track liveness as the plan itself would change it, so a vertex
         drawn twice in one epoch flips twice (leave then rejoin). *)
      let flipped = Hashtbl.create 16 in
      let is_live v =
        match Hashtbl.find_opt flipped v with
        | Some b -> b
        | None -> G.live g v
      in
      List.init cfg.events (fun _ ->
          let v = Prng.Rng.int rng n in
          let op = if is_live v then Girg.Mutate.Leave v else Girg.Mutate.Rejoin v in
          Hashtbl.replace flipped v (not (is_live v));
          op)
  | Adversarial ->
      (* Highest-weight live vertices first; ties break on the lower
         index so the target set is unique. *)
      let order = Array.init n (fun v -> v) in
      Array.sort
        (fun a b ->
          match compare inst.weights.(b) inst.weights.(a) with
          | 0 -> compare a b
          | c -> c)
        order;
      let ops = ref [] and taken = ref 0 and i = ref 0 in
      while !taken < cfg.events && !i < n do
        let v = order.(!i) in
        if G.live g v then begin
          ops := Girg.Mutate.Leave v :: !ops;
          incr taken
        end;
        incr i
      done;
      List.rev !ops

(* Milgram's letter holders give up with probability [quit] at every
   forwarding step: a chain of [s] hops survives with probability
   [(1-quit)^s].  One coin per delivered run, keyed on its index in the
   (deterministic) delivery order. *)
let survives_quit cfg ~epoch i steps =
  if cfg.quit <= 0.0 then true
  else
    let rng =
      Prng.Rng.of_mixed_triple
        ~base:(Prng.Rng.mix64 (Int64.of_int cfg.seed))
        ~a:epoch ~b:2 ~c:i
    in
    Prng.Rng.unit_float rng < ((1.0 -. cfg.quit) ** steps)

let measure ?pool cfg ~(inst : Girg.Instance.t) ~epoch =
  let g = inst.graph in
  let pair_rng =
    Prng.Rng.of_mixed_triple
      ~base:(Prng.Rng.mix64 (Int64.of_int cfg.pair_seed))
      ~a:epoch ~b:1 ~c:0
  in
  let pairs = Workload.sample_pairs_giant ~rng:pair_rng ~graph:g ~count:cfg.count in
  let results =
    Workload.run ?pool ~graph:g
      ~objective_for:(fun ~target -> Greedy_routing.Objective.girg_phi inst ~target)
      ~protocol:cfg.protocol ?max_steps:cfg.max_steps ~with_stretch:true ~pairs ()
  in
  let keep = Array.mapi (fun i s -> survives_quit cfg ~epoch i s) results.steps in
  let filter arr =
    let out = ref [] in
    Array.iteri (fun i x -> if i < Array.length keep && keep.(i) then out := x :: !out) arr;
    Array.of_list (List.rev !out)
  in
  let steps = filter results.steps in
  let stretches = filter results.stretches in
  let mean arr = if Array.length arr = 0 then nan else Stats.Summary.mean arr in
  {
    epoch;
    live = G.live_count g;
    edges = G.m g;
    attempted = results.attempted;
    delivered = Array.length steps;
    mean_steps = mean steps;
    mean_stretch = mean stretches;
  }

let run_local ?pool cfg (inst : Girg.Instance.t) =
  let rows = ref [ measure ?pool cfg ~inst ~epoch:(G.epoch inst.graph) ] in
  let final =
    let cur = ref inst in
    for _ = 1 to cfg.epochs do
      let ops = plan cfg ~inst:!cur ~epoch:(G.epoch !cur.graph + 1) in
      cur := Girg.Mutate.apply ~seed:cfg.seed !cur ops;
      rows := measure ?pool cfg ~inst:!cur ~epoch:(G.epoch !cur.graph) :: !rows
    done;
    !cur
  in
  (final, List.rev !rows)

let record_json cfg row =
  let open Obs.Export in
  Obj
    [
      ("record", Str "smallworld.churn.v1");
      ("scenario", Str (scenario_to_string cfg.scenario));
      ("protocol", Str (Greedy_routing.Protocol.name cfg.protocol));
      ("epoch", Int row.epoch);
      ("live", Int row.live);
      ("edges", Int row.edges);
      ("attempted", Int row.attempted);
      ("delivered", Int row.delivered);
      ("mean_steps", Float row.mean_steps);
      ("mean_stretch", Float row.mean_stretch);
    ]

let table cfg rows =
  let t =
    Stats.Table.create
      ~title:
        (Printf.sprintf "Routing under %s churn (%s)"
           (scenario_to_string cfg.scenario)
           (Greedy_routing.Protocol.name cfg.protocol))
      ~columns:[ "epoch"; "live"; "edges"; "attempted"; "delivered"; "mean steps"; "stretch" ]
  in
  List.iter
    (fun r ->
      let f x = if Float.is_nan x then "-" else Printf.sprintf "%.2f" x in
      Stats.Table.add_row t
        [
          string_of_int r.epoch;
          string_of_int r.live;
          string_of_int r.edges;
          string_of_int r.attempted;
          string_of_int r.delivered;
          f r.mean_steps;
          f r.mean_stretch;
        ])
    rows;
  t
