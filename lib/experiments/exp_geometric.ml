let id = "E11"
let title = "Objective-based greedy vs degree-agnostic geometric routing"

let claim =
  "Routing by geometric distance alone ignores hub weights and gets stuck \
   far more often than phi-greedy; the gap widens as beta -> 3 where hubs \
   carry less of the graph (cf. the failures reported in [9, 10])."

let run ctx =
  let n = Context.pick ctx ~quick:8192 ~standard:32768 in
  let pairs_count = Context.pick ctx ~quick:200 ~standard:400 in
  let betas = [ 2.2; 2.5; 2.8 ] in
  let table =
    Stats.Table.create
      ~title:(id ^ ": " ^ title)
      ~columns:[ "beta"; "objective"; "success"; "mean steps"; "paper" ]
  in
  List.iteri
    (fun bi beta ->
      let rng = Context.rng ctx ~salt:(11_000 + bi) in
      let params = Girg.Params.make ~dim:2 ~beta ~c:0.25 ~n () in
      let inst = Girg.Instance.generate ~rng params in
      let pairs = Workload.sample_pairs_giant ~rng ~graph:inst.graph ~count:pairs_count in
      let objectives =
        [
          ("phi (weight-aware)", fun ~target -> Greedy_routing.Objective.girg_phi inst ~target);
          ( "geometric (degree-agnostic)",
            fun ~target ->
              Greedy_routing.Objective.geometric ~packed:inst.packed
                ~positions:inst.positions ~target () );
        ]
      in
      List.iter
        (fun (label, objective_for) ->
          let res =
            Workload.run ~graph:inst.graph ~objective_for
              ~protocol:Greedy_routing.Protocol.Greedy ~pairs ()
          in
          Stats.Table.add_row table
            [
              Printf.sprintf "%.1f" beta;
              label;
              Printf.sprintf "%.3f" (Workload.success_rate res);
              Printf.sprintf "%.2f" (Workload.mean_steps res);
              (if String.length label > 3 && String.sub label 0 3 = "phi" then
                 "robust for all beta"
               else "lower success, degrades with beta");
            ])
        objectives)
    betas;
  [ table ]
