(** Greedy routing under churn (the dynamic counterpart of the static
    experiments).

    A churn run drives a mutation scenario over a live {!Girg.Instance.t}
    one epoch at a time — plan events, apply them through
    {!Girg.Mutate.apply}, measure delivery — and reports one
    {!epoch_row} per graph version, baseline included.

    Determinism: planning, pair sampling and Milgram quit coins draw
    from disjoint [of_mixed_triple] substreams keyed on [(seed, epoch)],
    so a run replays bit-identically for any job count and for both
    heap-built and mmap'd base graphs. *)

type scenario =
  | Uniform  (** each event flips a uniformly drawn vertex (leave/rejoin) *)
  | Adversarial
      (** each epoch removes the [events] highest-weight live vertices —
          the targeted-attack setting *)
  | Milgram
      (** no structural churn; the per-hop [quit] probability models
          Milgram's letter holders giving up *)

val scenario_to_string : scenario -> string
(** ["uniform" | "adversarial" | "milgram"] — wire-stable. *)

val scenario_of_string : string -> (scenario, string) result

type config = {
  scenario : scenario;
  epochs : int;  (** mutation rounds after the baseline measurement *)
  events : int;  (** structural events per epoch (ignored by [Milgram]) *)
  quit : float;  (** per-hop quit probability, [0.0] disables *)
  seed : int;  (** keys mutation planning, resampling and quit coins *)
  count : int;  (** measurement pairs per epoch *)
  pair_seed : int;  (** keys pair sampling, independently of [seed] *)
  protocol : Greedy_routing.Protocol.t;
  max_steps : int option;
}

type epoch_row = {
  epoch : int;
  live : int;
  edges : int;
  attempted : int;
  delivered : int;
  mean_steps : float;  (** over delivered runs; [nan] if none *)
  mean_stretch : float;  (** over delivered runs; [nan] if none *)
}

val plan : config -> inst:Girg.Instance.t -> epoch:int -> Girg.Mutate.op list
(** The structural events of one epoch against the current graph.
    Pure — the instance is not touched. *)

val measure :
  ?pool:Parallel.Pool.t -> config -> inst:Girg.Instance.t -> epoch:int -> epoch_row
(** Sample [count] giant-component pairs, route them, apply the quit
    coins, and aggregate. *)

val run_local :
  ?pool:Parallel.Pool.t -> config -> Girg.Instance.t -> Girg.Instance.t * epoch_row list
(** Baseline measurement, then [epochs] rounds of plan/apply/measure.
    Returns the final instance and one row per measured version
    ([epochs + 1] rows, ascending). *)

val record_json : config -> epoch_row -> Obs.Export.json
(** One [smallworld.churn.v1] record (a JSONL line per epoch). *)

val table : config -> epoch_row list -> Stats.Table.t
(** Render rows as the standard experiment table. *)
