type t = {
  id : string;
  title : string;
  claim : string;
  run : Context.t -> Stats.Table.t list;
}

let all =
  [
    { id = Exp_success.id; title = Exp_success.title; claim = Exp_success.claim; run = Exp_success.run };
    { id = Exp_wmin.id; title = Exp_wmin.title; claim = Exp_wmin.claim; run = Exp_wmin.run };
    { id = Exp_length.id; title = Exp_length.title; claim = Exp_length.claim; run = Exp_length.run };
    {
      id = Exp_trajectory.id;
      title = Exp_trajectory.title;
      claim = Exp_trajectory.claim;
      run = Exp_trajectory.run;
    };
    {
      id = Exp_patching.id;
      title = Exp_patching.title;
      claim = Exp_patching.claim;
      run = Exp_patching.run;
    };
    { id = Exp_relax.id; title = Exp_relax.title; claim = Exp_relax.claim; run = Exp_relax.run };
    {
      id = Exp_hyperbolic.id;
      title = Exp_hyperbolic.title;
      claim = Exp_hyperbolic.claim;
      run = Exp_hyperbolic.run;
    };
    {
      id = Exp_kleinberg.id;
      title = Exp_kleinberg.title;
      claim = Exp_kleinberg.claim;
      run = Exp_kleinberg.run;
    };
    {
      id = Exp_gp_sparse.id;
      title = Exp_gp_sparse.title;
      claim = Exp_gp_sparse.claim;
      run = Exp_gp_sparse.run;
    };
    {
      id = Exp_graph_props.id;
      title = Exp_graph_props.title;
      claim = Exp_graph_props.claim;
      run = Exp_graph_props.run;
    };
    {
      id = Exp_geometric.id;
      title = Exp_geometric.title;
      claim = Exp_geometric.claim;
      run = Exp_geometric.run;
    };
    { id = Exp_layers.id; title = Exp_layers.title; claim = Exp_layers.claim; run = Exp_layers.run };
    {
      id = Exp_failures.id;
      title = Exp_failures.title;
      claim = Exp_failures.claim;
      run = Exp_failures.run;
    };
    {
      id = Exp_robustness.id;
      title = Exp_robustness.title;
      claim = Exp_robustness.claim;
      run = Exp_robustness.run;
    };
    {
      id = Exp_embedding.id;
      title = Exp_embedding.title;
      claim = Exp_embedding.claim;
      run = Exp_embedding.run;
    };
    {
      id = Exp_distributed.id;
      title = Exp_distributed.title;
      claim = Exp_distributed.claim;
      run = Exp_distributed.run;
    };
    {
      id = Exp_geometry_needed.id;
      title = Exp_geometry_needed.title;
      claim = Exp_geometry_needed.claim;
      run = Exp_geometry_needed.run;
    };
    { id = Exp_churn.id; title = Exp_churn.title; claim = Exp_churn.claim; run = Exp_churn.run };
  ]

let find id =
  let id = String.lowercase_ascii id in
  List.find_opt (fun e -> String.lowercase_ascii e.id = id) all

let run_traced e ctx = Obs.Span.time ~name:("exp." ^ e.id) (fun () -> e.run ctx)

let render_header e =
  Printf.sprintf "---- %s: %s ----\nclaim: %s\n\n" e.id e.title e.claim

let run_and_render e ctx =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (render_header e);
  let tables, _span = run_traced e ctx in
  List.iter (fun table -> Buffer.add_string buf (Stats.Table.render table ^ "\n")) tables;
  Buffer.contents buf
