(** The experiment registry: one entry per table/figure-level claim of the
    paper (see DESIGN.md §3 and EXPERIMENTS.md for the full index). *)

type t = {
  id : string;  (** "E1" .. "E11" *)
  title : string;
  claim : string;  (** the paper claim being reproduced, in one paragraph *)
  run : Context.t -> Stats.Table.t list;
}

val all : t list
(** In id order. *)

val find : string -> t option
(** Case-insensitive lookup by id. *)

val run_traced : t -> Context.t -> Stats.Table.t list * Obs.Span.t option
(** Run one experiment inside an [Obs.Span] named ["exp." ^ id] and
    return its tables plus the completed span tree ([None] when
    observability is disabled via [SMALLWORLD_OBS=0]). *)

val render_header : t -> string
(** The "---- Ei: title ----" banner plus claim paragraph. *)

val run_and_render : t -> Context.t -> string
(** Run one experiment (traced, via {!run_traced}) and render its claim
    plus all tables. *)
