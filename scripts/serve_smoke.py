#!/usr/bin/env python3
"""CI smoke for the route-serving daemon (API v1, stdlib only).

Usage: serve_smoke.py PORT EXPECTED_ROUTE_FILE [nodrain]
                      [--admin PORT] [--access-log FILE] [--trace-out FILE]
                      [--json-only]
       serve_smoke.py check-access-log FILE MIN_LINES

Connects to a running `serve` daemon on 127.0.0.1:PORT (started with
`--load net=... --max-batch 8`) and drives a scripted request mix:

- health: the preloaded instance is registered;
- route: the reply's `text` field is byte-identical to what
  `graphs_cli route` printed for the same pair (EXPECTED_ROUTE_FILE);
- traced route: the same pair with a trace context in the envelope;
  with --trace-out (the file the daemon was started with) and obs on,
  the daemon must append one smallworld.trace.v1 record whose parent
  is the client's declared span and whose tree holds the server stages
  plus an algorithm span;
- route_batch (sampled pairs): right count, deterministic across a
  repeat request;
- binary codec (skipped with --json-only): the same route over the
  length-prefixed binary framing decodes to the byte-identical reply a
  JSON client gets;
- route cache: a repeated (instance, pair, protocol) route bumps the
  `server.cache.hits` counter and returns the identical reply;
- route_batch beyond --max-batch: refused with the `overloaded` code;
- deadline_ms=0: refused with the `deadline` code;
- unknown instance: refused with the `unknown-instance` code;
- stats on the preloaded instance;
- stats-server mid-run: counters consistent with the driven mix,
  gauges present, and (when the daemon runs with obs on) per-stage
  latency quantiles with p50 <= p99 and non-zero counts;
- with --admin: HTTP GET /metrics (Prometheus text, cumulative
  `_bucket{le=` lines) and GET /stats on the admin port, plus the rule
  that compute ops are refused there;
- health again: the counter snapshot saw every request;
- drain: acknowledged, connection closes (skipped when `nodrain` is
  given, so the harness can exercise SIGTERM instead);
- with --access-log (and after drain): the JSONL access log holds one
  schema-tagged line per request with ordered ids and stage timings.

`check-access-log` is the standalone validation mode for the nodrain /
SIGTERM path: run it after the daemon has exited.

Exits non-zero (with a message) on the first deviation.
"""

import json
import socket
import struct
import sys
import time


def connect(port, attempts=50):
    for _ in range(attempts):
        try:
            sock = socket.create_connection(("127.0.0.1", port), timeout=10)
            return sock
        except OSError:
            time.sleep(0.2)
    sys.exit(f"cannot connect to 127.0.0.1:{port}")


class Client:
    def __init__(self, sock):
        self.file = sock.makefile("rw", encoding="utf-8", newline="\n")

    def rpc(self, request):
        request.setdefault("v", 1)
        self.file.write(json.dumps(request) + "\n")
        self.file.flush()
        line = self.file.readline()
        if not line:
            sys.exit(f"connection closed answering {request!r}")
        return json.loads(line)


def _leb(n):
    """Unsigned LEB128."""
    out = bytearray()
    while True:
        low = n & 0x7F
        n >>= 7
        if n == 0:
            out.append(low)
            return bytes(out)
        out.append(low | 0x80)


def _enc(v, out):
    """Encode one JSON value in the Api.Binary tagged format."""
    if v is None:
        out.append(0)
    elif v is True:
        out.append(1)
    elif v is False:
        out.append(2)
    elif isinstance(v, int):
        zz = (v << 1) ^ (v >> 63)  # zigzag; Python >> is arithmetic
        out += b"\x03" + _leb(zz)
    elif isinstance(v, float):
        out += b"\x04" + struct.pack("<d", v)
    elif isinstance(v, str):
        b = v.encode()
        out += b"\x05" + _leb(len(b)) + b
    elif isinstance(v, list):
        out += b"\x06" + _leb(len(v))
        for x in v:
            _enc(x, out)
    elif isinstance(v, dict):
        out += b"\x07" + _leb(len(v))
        for k, x in v.items():
            kb = k.encode()
            out += _leb(len(kb)) + kb
            _enc(x, out)
    else:
        sys.exit(f"binary encode: unsupported value {v!r}")


def _rleb(buf, p):
    v = shift = 0
    while True:
        c = buf[p]
        p += 1
        v |= (c & 0x7F) << shift
        shift += 7
        if not c & 0x80:
            return v, p


def _dec(buf, p):
    """Decode one tagged value; returns (value, next_pos)."""
    tag = buf[p]
    p += 1
    if tag == 0:
        return None, p
    if tag == 1:
        return True, p
    if tag == 2:
        return False, p
    if tag == 3:
        v, p = _rleb(buf, p)
        return (v >> 1) ^ -(v & 1), p
    if tag == 4:
        return struct.unpack_from("<d", buf, p)[0], p + 8
    if tag == 5:
        n, p = _rleb(buf, p)
        return buf[p : p + n].decode(), p + n
    if tag == 6:
        n, p = _rleb(buf, p)
        items = []
        for _ in range(n):
            x, p = _dec(buf, p)
            items.append(x)
        return items, p
    if tag == 7:
        n, p = _rleb(buf, p)
        fields = {}
        for _ in range(n):
            klen, p = _rleb(buf, p)
            key = buf[p : p + klen].decode()
            p += klen
            fields[key], p = _dec(buf, p)
        return fields, p
    sys.exit(f"binary decode: unknown tag {tag}")


class BinaryClient:
    """Speaks the length-prefixed binary framing of Api.Binary:
    magic 0xB1, version 0x01, LEB128 payload length, tagged payload."""

    def __init__(self, sock):
        self.sock = sock
        self.buf = b""

    def rpc(self, request):
        request.setdefault("v", 1)
        payload = bytearray()
        _enc(request, payload)
        self.sock.sendall(b"\xb1\x01" + _leb(len(payload)) + bytes(payload))
        while True:
            frame = self._take_frame()
            if frame is not None:
                reply, consumed = _dec(frame, 0)
                if consumed != len(frame):
                    sys.exit(f"binary reply: {len(frame) - consumed} trailing bytes")
                return reply
            data = self.sock.recv(65536)
            if not data:
                sys.exit(f"connection closed answering {request!r} (binary)")
            self.buf += data

    def _take_frame(self):
        buf = self.buf
        if len(buf) < 2:
            return None
        if buf[0] != 0xB1 or buf[1] != 0x01:
            sys.exit(f"binary reply: bad frame header {buf[:2]!r}")
        p, n, shift = 2, 0, 0
        while True:
            if p >= len(buf):
                return None
            c = buf[p]
            p += 1
            n |= (c & 0x7F) << shift
            shift += 7
            if not c & 0x80:
                break
        if len(buf) < p + n:
            return None
        self.buf = buf[p + n :]
        return buf[p : p + n]


def expect_ok(reply, op):
    if not reply.get("ok"):
        sys.exit(f"{op}: expected success, got {reply!r}")
    return reply["result"]


def expect_error(reply, code, op):
    if reply.get("ok"):
        sys.exit(f"{op}: expected the {code!r} error, got {reply!r}")
    got = reply.get("error", {}).get("code")
    if got != code:
        sys.exit(f"{op}: expected the {code!r} error, got {got!r}")


def http_get(port, path):
    """Minimal HTTP/1.0 GET against the daemon's admin listener."""
    sock = socket.create_connection(("127.0.0.1", port), timeout=10)
    sock.sendall(f"GET {path} HTTP/1.0\r\n\r\n".encode())
    chunks = []
    while True:
        data = sock.recv(65536)
        if not data:
            break
        chunks.append(data)
    sock.close()
    raw = b"".join(chunks).decode("utf-8", errors="replace")
    head, _, body = raw.partition("\r\n\r\n")
    status = head.split("\r\n", 1)[0]
    return status, body


def check_server_stats(stats, when):
    """Shared assertions on a stats-server result dict."""
    for key in ("uptime_s", "draining", "obs_live", "counters", "gauges", "stages"):
        if key not in stats:
            sys.exit(f"stats-server ({when}): missing field {key!r}: {stats!r}")
    counters = stats["counters"]
    if counters.get("server.accepted", 0) < counters.get("server.served", 0):
        sys.exit(f"stats-server ({when}): served exceeds accepted: {counters!r}")
    for key in ("server.cache.hits", "server.cache.misses"):
        if key not in counters:
            sys.exit(f"stats-server ({when}): missing counter {key!r}")
    for gauge in (
        "server.queue_depth",
        "server.inflight",
        "server.registry.size",
        "server.registry.pinned",
        "server.cache.size",
        "server.cache.cap",
    ):
        if gauge not in stats["gauges"]:
            sys.exit(f"stats-server ({when}): missing gauge {gauge!r}")
    # This very request is in flight while the snapshot is taken.
    if stats["gauges"]["server.inflight"] < 1:
        sys.exit(f"stats-server ({when}): inflight gauge lost this request")
    if stats["gauges"]["server.registry.size"] < 1:
        sys.exit(f"stats-server ({when}): preloaded instance not in registry gauge")
    if stats["obs_live"]:
        stages = {s["stage"]: s for s in stats["stages"]}
        for name in ("stage.compute", "stage.render", "stage.write"):
            if name not in stages:
                sys.exit(f"stats-server ({when}): no {name} histogram")
            st = stages[name]
            if st["count"] < 1:
                sys.exit(f"stats-server ({when}): {name} saw no requests: {st!r}")
            if not (st["p50"] <= st["p90"] <= st["p99"] <= st["p999"]):
                sys.exit(f"stats-server ({when}): unordered quantiles: {st!r}")
        if stages.get("latency.route", {}).get("count", 0) < 1:
            sys.exit(f"stats-server ({when}): route latency histogram is empty")
        if "smallworld_server_accepted" not in stats.get("prometheus", ""):
            sys.exit(f"stats-server ({when}): prometheus dump lacks the counters")
    return counters


def check_access_log(path, min_lines, attempts=50):
    """The access log is flushed asynchronously: poll until it holds at
    least min_lines valid smallworld.access.v1 records."""
    entries = []
    for _ in range(attempts):
        try:
            with open(path, encoding="utf-8") as f:
                lines = [l for l in f.read().splitlines() if l.strip()]
        except OSError:
            lines = []
        if len(lines) >= min_lines:
            entries = lines
            break
        time.sleep(0.2)
    if len(entries) < min_lines:
        sys.exit(f"access log {path}: expected >= {min_lines} lines, got {len(entries)}")
    prev_req = 0
    for line in entries:
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as e:
            sys.exit(f"access log line is not JSON ({e}): {line!r}")
        if rec.get("schema") != "smallworld.access.v1":
            sys.exit(f"access log line has wrong schema: {line!r}")
        for key in ("req", "op", "outcome", "t", "queue_ms", "compute_ms",
                    "render_ms", "write_ms", "total_ms"):
            if key not in rec:
                sys.exit(f"access log line missing {key!r}: {line!r}")
        if rec["req"] <= prev_req:
            sys.exit(f"access log request ids not increasing: {line!r}")
        prev_req = rec["req"]
        parts = rec["queue_ms"] + rec["compute_ms"] + rec["render_ms"] + rec["write_ms"]
        if abs(parts - rec["total_ms"]) > 0.01:
            sys.exit(f"access log stage timings do not sum to total_ms: {line!r}")
    ops = {rec["op"] for rec in map(json.loads, entries)}
    if "route" not in ops:
        sys.exit(f"access log never saw a route request: ops = {sorted(ops)!r}")
    print(f"access log ok: {len(entries)} records, ops {sorted(ops)}")


def check_trace_file(path, trace_id, attempts=50):
    """The daemon appends one smallworld.trace.v1 record per traced
    request (flushed synchronously); poll briefly for the file."""
    records = []
    for _ in range(attempts):
        try:
            with open(path, encoding="utf-8") as f:
                lines = [l for l in f.read().splitlines() if l.strip()]
        except OSError:
            lines = []
        if lines:
            records = [json.loads(l) for l in lines]
            break
        time.sleep(0.2)
    ours = [r for r in records if r.get("trace") == trace_id]
    if not ours:
        sys.exit(f"trace file {path}: no record for trace {trace_id!r}")
    rec = ours[0]
    if rec.get("schema") != "smallworld.trace.v1":
        sys.exit(f"trace record has wrong schema: {rec!r}")
    if rec.get("origin") != "server":
        sys.exit(f"trace record origin is not the server: {rec!r}")
    if rec.get("parent") != 1:
        sys.exit(f"trace record does not parent the client span: {rec!r}")
    if rec.get("span", 0) >= 0:
        sys.exit(f"server trace span ids must be negative: {rec!r}")
    root = rec.get("root", {})
    if root.get("name") != "server.request":
        sys.exit(f"trace root is not server.request: {root!r}")
    children = {c["name"] for c in root.get("children", [])}
    for stage in ("stage.queue_wait", "stage.compute", "stage.render", "stage.write"):
        if stage not in children:
            sys.exit(f"trace root lacks the {stage} span: {sorted(children)!r}")
    compute = next(c for c in root["children"] if c["name"] == "stage.compute")
    algo = {c["name"] for c in compute.get("children", [])}
    if not any(n.startswith("server.") for n in algo):
        sys.exit(f"stage.compute holds no server op span: {sorted(algo)!r}")
    print(f"trace file ok: {len(ours)} record(s) for trace {trace_id!r}")


def main():
    args = sys.argv[1:]
    if args and args[0] == "check-access-log":
        check_access_log(args[1], int(args[2]))
        return

    admin_port = None
    access_log = None
    trace_out = None
    json_only = False
    positional = []
    i = 0
    while i < len(args):
        if args[i] == "--admin":
            admin_port = int(args[i + 1])
            i += 2
        elif args[i] == "--access-log":
            access_log = args[i + 1]
            i += 2
        elif args[i] == "--trace-out":
            trace_out = args[i + 1]
            i += 2
        elif args[i] == "--json-only":
            json_only = True
            i += 1
        else:
            positional.append(args[i])
            i += 1
    port = int(positional[0])
    expected_route = open(positional[1], encoding="utf-8").read()
    nodrain = len(positional) > 2 and positional[2] == "nodrain"
    client = Client(connect(port))

    health = expect_ok(client.rpc({"op": "health"}), "health")
    if "net" not in health["instances"]:
        sys.exit(f"preloaded instance missing from registry: {health!r}")

    route = expect_ok(
        client.rpc(
            {
                "op": "route",
                "instance": "net",
                "source": 4,
                "target": 93,
                "protocol": "phi-dfs",
                "id": 1,
            }
        ),
        "route",
    )
    if route["text"] != expected_route:
        sys.exit(
            "served route text differs from graphs_cli output:\n"
            f"served:   {route['text']!r}\nexpected: {expected_route!r}"
        )

    # The same route again, now carrying a trace context: the reply is
    # unchanged, and (with --trace-out + obs on) the daemon appends a
    # smallworld.trace.v1 record parented under our declared span.
    traced = expect_ok(
        client.rpc(
            {
                "op": "route",
                "instance": "net",
                "source": 4,
                "target": 93,
                "protocol": "phi-dfs",
                "trace": {"id": "smoke-trace", "span": 1},
            }
        ),
        "traced route",
    )
    if traced["text"] != expected_route:
        sys.exit("traced route text differs from the untraced reply")

    batch_req = {
        "op": "route_batch",
        "instance": "net",
        "count": 4,
        "pair_seed": 3,
        "pair_pool": "giant",
        "protocol": "greedy",
    }
    batch = expect_ok(client.rpc(batch_req), "route_batch")
    if len(batch["routes"]) != 4:
        sys.exit(f"route_batch: expected 4 replies, got {len(batch['routes'])}")
    again = expect_ok(client.rpc(batch_req), "route_batch repeat")
    if batch != again:
        sys.exit("route_batch is not deterministic across identical requests")

    # Mid-run telemetry scrape, while the connection is hot.
    mid = expect_ok(client.rpc({"op": "stats-server"}), "stats-server")
    mid_counters = check_server_stats(mid, "mid-run")
    # health + route + traced route + batch x2 + this stats-server
    # = 6 accepted so far.
    if mid_counters.get("server.accepted", 0) < 6:
        sys.exit(f"stats-server (mid-run): accepted lost requests: {mid_counters!r}")

    oversized = [[i, i + 1] for i in range(0, 18, 2)]  # 9 pairs > --max-batch 8
    expect_error(
        client.rpc({"op": "route_batch", "instance": "net", "pairs": oversized}),
        "overloaded",
        "oversized batch",
    )

    expect_error(
        client.rpc(
            {
                "op": "route",
                "instance": "net",
                "source": 4,
                "target": 93,
                "deadline_ms": 0,
            }
        ),
        "deadline",
        "deadline_ms=0",
    )

    expect_error(
        client.rpc({"op": "stats", "instance": "ghost"}),
        "unknown-instance",
        "unknown instance",
    )

    stats = expect_ok(client.rpc({"op": "stats", "instance": "net"}), "stats")
    if stats["vertices"] <= 0 or stats["edges"] <= 0:
        sys.exit(f"implausible stats reply: {stats!r}")

    if not json_only:
        # Binary wire codec: the identical route over the framed binary
        # protocol must decode to exactly the reply a JSON client gets.
        breq = {
            "op": "route",
            "instance": "net",
            "source": 4,
            "target": 93,
            "protocol": "phi-dfs",
            "id": 41,
        }
        jreply = client.rpc(dict(breq))
        bsock = connect(port)
        breply = BinaryClient(bsock).rpc(dict(breq))
        if breply != jreply:
            sys.exit(
                "binary reply differs from the JSON reply:\n"
                f"binary: {breply!r}\njson:   {jreply!r}"
            )
        if expect_ok(breply, "binary route")["text"] != expected_route:
            sys.exit("binary route text differs from graphs_cli output")
        bsock.close()
        print("binary codec ok: reply matches the JSON codec")

    # Route cache: the (4, 93) phi-dfs pair is now warm, so two more
    # repeats must come from the cache and bump server.cache.hits.
    pre = expect_ok(client.rpc({"op": "stats-server"}), "stats-server (cache pre)")
    pre_hits = pre["counters"]["server.cache.hits"]
    if pre["counters"]["server.cache.misses"] < 1:
        sys.exit(f"cache: the first route was not counted as a miss: {pre['counters']!r}")
    cached_req = {"op": "route", "instance": "net", "source": 4, "target": 93,
                  "protocol": "phi-dfs"}
    first = expect_ok(client.rpc(dict(cached_req)), "route (cached)")
    second = expect_ok(client.rpc(dict(cached_req)), "route (cached repeat)")
    if first != second or first["text"] != expected_route:
        sys.exit("cached route reply differs from the computed one")
    post = expect_ok(client.rpc({"op": "stats-server"}), "stats-server (cache post)")
    if post["counters"]["server.cache.hits"] < pre_hits + 2:
        sys.exit(
            f"cache hits did not advance: {pre_hits} -> "
            f"{post['counters']['server.cache.hits']}"
        )
    if post["gauges"]["server.cache.size"] < 1:
        sys.exit(f"cache size gauge empty after hits: {post['gauges']!r}")
    print(f"route cache ok: hits {pre_hits} -> {post['counters']['server.cache.hits']}")

    if admin_port is not None:
        status, body = http_get(admin_port, "/metrics")
        if "200" not in status:
            sys.exit(f"admin /metrics: expected 200, got {status!r}")
        if mid["obs_live"]:
            if "smallworld_server_accepted" not in body:
                sys.exit("admin /metrics: missing the server counters")
            if "_bucket{le=" not in body:
                sys.exit("admin /metrics: no cumulative histogram buckets")
            # The cache-hit leg ran before this scrape: the Prometheus
            # mirror of server.cache.hits must be non-zero.
            hits_line = next(
                (l for l in body.splitlines()
                 if l.startswith("smallworld_server_cache_hits")), None)
            if hits_line is None:
                sys.exit("admin /metrics: no cache-hit counter")
            if float(hits_line.split()[-1]) < 2:
                sys.exit(f"admin /metrics: cache hits not visible: {hits_line!r}")
        status, body = http_get(admin_port, "/stats")
        if "200" not in status:
            sys.exit(f"admin /stats: expected 200, got {status!r}")
        admin_stats = json.loads(body)
        if not admin_stats.get("ok"):
            sys.exit(f"admin /stats: not a success reply: {admin_stats!r}")
        check_server_stats_result = admin_stats["result"]
        # Admin scrapes are out-of-band: they must not inflate the
        # request counters the workers maintain.
        if (
            check_server_stats_result["counters"]["server.accepted"]
            < mid_counters["server.accepted"]
        ):
            sys.exit("admin /stats: counters went backwards")
        # The cache-hit leg above ran before this scrape: its hits must
        # be visible on the out-of-band admin plane too.
        if check_server_stats_result["counters"].get("server.cache.hits", 0) < 2:
            sys.exit(
                "admin /stats: cache hits not visible: "
                f"{check_server_stats_result['counters']!r}"
            )
        status, _ = http_get(admin_port, "/definitely-not-a-path")
        if "404" not in status:
            sys.exit(f"admin unknown path: expected 404, got {status!r}")
        admin_client = Client(connect(admin_port))
        expect_ok(admin_client.rpc({"op": "stats-server"}), "admin stats-server")
        expect_error(
            admin_client.rpc(
                {"op": "route", "instance": "net", "source": 0, "target": 1}
            ),
            "bad-request",
            "compute op on admin port",
        )

    health = expect_ok(client.rpc({"op": "health"}), "health")
    counters = health["counters"]
    # Only backpressure refusals (overloaded / draining) count as
    # rejections; unknown-instance is an ordinary failed reply.
    if counters.get("server.rejected", 0) < 1:
        sys.exit(f"rejections not counted: {counters!r}")
    if counters.get("server.deadline_missed", 0) < 1:
        sys.exit(f"deadline miss not counted: {counters!r}")
    if counters.get("server.served", 0) < 5:
        sys.exit(f"served requests not counted: {counters!r}")

    if trace_out is not None and mid["obs_live"]:
        check_trace_file(trace_out, "smoke-trace")

    if not nodrain:
        drained = expect_ok(client.rpc({"op": "drain"}), "drain")
        if not drained.get("draining"):
            sys.exit(f"drain not acknowledged: {drained!r}")
        if access_log is not None:
            # Everything this script sent on the main connection:
            # 2x health, route, traced route, 2x batch, stats-server,
            # 3 refusals, stats, 2x cache stats-server, 2x cached
            # route, drain = 16 requests; the binary leg adds its JSON
            # twin plus one binary request.
            check_access_log(access_log, 16 if json_only else 18)

    print("serve smoke: all checks passed")


if __name__ == "__main__":
    main()
