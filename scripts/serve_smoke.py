#!/usr/bin/env python3
"""CI smoke for the route-serving daemon (API v1, stdlib only).

Usage: serve_smoke.py PORT EXPECTED_ROUTE_FILE [nodrain]

Connects to a running `serve` daemon on 127.0.0.1:PORT (started with
`--load net=... --max-batch 8`) and drives a scripted request mix:

- health: the preloaded instance is registered;
- route: the reply's `text` field is byte-identical to what
  `graphs_cli route` printed for the same pair (EXPECTED_ROUTE_FILE);
- route_batch (sampled pairs): right count, deterministic across a
  repeat request;
- route_batch beyond --max-batch: refused with the `overloaded` code;
- deadline_ms=0: refused with the `deadline` code;
- unknown instance: refused with the `unknown-instance` code;
- stats on the preloaded instance;
- health again: the counter snapshot saw every request;
- drain: acknowledged, connection closes (skipped when the third
  argument is `nodrain`, so the harness can exercise SIGTERM instead).

Exits non-zero (with a message) on the first deviation.
"""

import json
import socket
import sys
import time


def connect(port, attempts=50):
    for _ in range(attempts):
        try:
            sock = socket.create_connection(("127.0.0.1", port), timeout=10)
            return sock
        except OSError:
            time.sleep(0.2)
    sys.exit(f"cannot connect to 127.0.0.1:{port}")


class Client:
    def __init__(self, sock):
        self.file = sock.makefile("rw", encoding="utf-8", newline="\n")

    def rpc(self, request):
        request.setdefault("v", 1)
        self.file.write(json.dumps(request) + "\n")
        self.file.flush()
        line = self.file.readline()
        if not line:
            sys.exit(f"connection closed answering {request!r}")
        return json.loads(line)


def expect_ok(reply, op):
    if not reply.get("ok"):
        sys.exit(f"{op}: expected success, got {reply!r}")
    return reply["result"]


def expect_error(reply, code, op):
    if reply.get("ok"):
        sys.exit(f"{op}: expected the {code!r} error, got {reply!r}")
    got = reply.get("error", {}).get("code")
    if got != code:
        sys.exit(f"{op}: expected the {code!r} error, got {got!r}")


def main():
    port = int(sys.argv[1])
    expected_route = open(sys.argv[2], encoding="utf-8").read()
    client = Client(connect(port))

    health = expect_ok(client.rpc({"op": "health"}), "health")
    if "net" not in health["instances"]:
        sys.exit(f"preloaded instance missing from registry: {health!r}")

    route = expect_ok(
        client.rpc(
            {
                "op": "route",
                "instance": "net",
                "source": 4,
                "target": 93,
                "protocol": "phi-dfs",
                "id": 1,
            }
        ),
        "route",
    )
    if route["text"] != expected_route:
        sys.exit(
            "served route text differs from graphs_cli output:\n"
            f"served:   {route['text']!r}\nexpected: {expected_route!r}"
        )

    batch_req = {
        "op": "route_batch",
        "instance": "net",
        "count": 4,
        "pair_seed": 3,
        "pair_pool": "giant",
        "protocol": "greedy",
    }
    batch = expect_ok(client.rpc(batch_req), "route_batch")
    if len(batch["routes"]) != 4:
        sys.exit(f"route_batch: expected 4 replies, got {len(batch['routes'])}")
    again = expect_ok(client.rpc(batch_req), "route_batch repeat")
    if batch != again:
        sys.exit("route_batch is not deterministic across identical requests")

    oversized = [[i, i + 1] for i in range(0, 18, 2)]  # 9 pairs > --max-batch 8
    expect_error(
        client.rpc({"op": "route_batch", "instance": "net", "pairs": oversized}),
        "overloaded",
        "oversized batch",
    )

    expect_error(
        client.rpc(
            {
                "op": "route",
                "instance": "net",
                "source": 4,
                "target": 93,
                "deadline_ms": 0,
            }
        ),
        "deadline",
        "deadline_ms=0",
    )

    expect_error(
        client.rpc({"op": "stats", "instance": "ghost"}),
        "unknown-instance",
        "unknown instance",
    )

    stats = expect_ok(client.rpc({"op": "stats", "instance": "net"}), "stats")
    if stats["vertices"] <= 0 or stats["edges"] <= 0:
        sys.exit(f"implausible stats reply: {stats!r}")

    health = expect_ok(client.rpc({"op": "health"}), "health")
    counters = health["counters"]
    # Only backpressure refusals (overloaded / draining) count as
    # rejections; unknown-instance is an ordinary failed reply.
    if counters.get("server.rejected", 0) < 1:
        sys.exit(f"rejections not counted: {counters!r}")
    if counters.get("server.deadline_missed", 0) < 1:
        sys.exit(f"deadline miss not counted: {counters!r}")
    if counters.get("server.served", 0) < 5:
        sys.exit(f"served requests not counted: {counters!r}")

    if len(sys.argv) < 4 or sys.argv[3] != "nodrain":
        drained = expect_ok(client.rpc({"op": "drain"}), "drain")
        if not drained.get("draining"):
            sys.exit(f"drain not acknowledged: {drained!r}")

    print("serve smoke: all checks passed")


if __name__ == "__main__":
    main()
