#!/usr/bin/env python3
"""CI smoke for live-graph serving: mutate, churn, cache invalidation.

Usage: churn_smoke.py PORT PRE_ROUTE_FILE POST_ROUTE_FILE

Connects to a running `serve` daemon on 127.0.0.1:PORT (started with
`--load net=...`) and drives the live-graph op mix:

- route a fixed pair twice: the second reply is a cache hit and
  byte-identical to PRE_ROUTE_FILE (what `graphs_cli route` printed
  for the same pair on the same instance);
- mutate (JSON codec) with a fixed (seed, script): the reply reports
  the new epoch / bumped generation, and the route cache is swept —
  `server.cache.size` drops to 0 and re-routing the warmed pair is a
  miss, never a stale hit;
- the re-routed pair is byte-identical to POST_ROUTE_FILE (what
  `graphs_cli route` printed after `graphs_cli mutate` applied the
  same script locally — the serving path and the CLI replay the same
  deterministic mutation);
- the same route over the binary codec decodes to the identical reply
  and lands as a cache hit (both codecs share one cache);
- mutate again over the *binary* codec: generation and epoch advance
  once more and the cache is swept again;
- churn (JSON codec): per-epoch rows with the right shape, epoch ids
  ascending from the baseline, and the generation advanced once per
  churned epoch;
- drain: acknowledged, so the daemon exits cleanly after us.

Exits non-zero (with a message) on the first deviation.
"""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from serve_smoke import BinaryClient, Client, connect, expect_ok

PAIR = {"source": 4, "target": 93, "protocol": "phi-dfs"}
MUTATE_OPS = ["leave:450", "drop:3:7", "resample:12"]
MUTATE_SEED = 9


def read_file(path):
    with open(path, encoding="utf-8") as f:
        return f.read()


def stats(client):
    return expect_ok(client.rpc({"op": "stats-server"}), "stats-server")


def cache_counters(client):
    st = stats(client)
    c = st["counters"]
    return c["server.cache.hits"], c["server.cache.misses"], st["gauges"]


def main():
    if len(sys.argv) != 4:
        sys.exit(__doc__)
    port = int(sys.argv[1])
    pre_route = read_file(sys.argv[2])
    post_route = read_file(sys.argv[3])

    cj = Client(connect(port))
    cb = BinaryClient(connect(port))

    health = expect_ok(cj.rpc({"op": "health"}), "health")
    if "net" not in health["instances"]:
        sys.exit(f"health: preloaded instance missing: {health!r}")

    # Warm the cache on a fixed pair; the bytes are the CLI's bytes.
    route_req = {"op": "route", "instance": "net", **PAIR}
    first = expect_ok(cj.rpc(route_req), "route (cold)")
    if first["text"] != pre_route:
        sys.exit(
            "pre-mutation route differs from the CLI reference:\n"
            f"served: {first['text']!r}\nexpected: {pre_route!r}"
        )
    hits0, misses0, _ = cache_counters(cj)
    second = expect_ok(cj.rpc(route_req), "route (warm)")
    if second != first:
        sys.exit("warm route reply differs from the cold one")
    hits1, misses1, _ = cache_counters(cj)
    if hits1 != hits0 + 1 or misses1 != misses0:
        sys.exit(f"warm route was not a cache hit: {hits0},{misses0} -> {hits1},{misses1}")
    print(f"route cache warm: hits {hits1}, misses {misses1}")

    # Mutate over JSON: fixed (seed, script) => deterministic epoch 1.
    mutated = expect_ok(
        cj.rpc({"op": "mutate", "instance": "net", "ops": MUTATE_OPS,
                "seed": MUTATE_SEED}),
        "mutate",
    )
    if mutated["epoch"] != 1 or mutated["applied"] != len(MUTATE_OPS):
        sys.exit(f"mutate reply off: {mutated!r}")
    if mutated["live"] != mutated["vertices"] - 1:
        sys.exit(f"leave:450 should depart exactly one vertex: {mutated!r}")
    gen_after_mutate = mutated["generation"]
    if gen_after_mutate < 2:
        sys.exit(f"mutation did not bump the generation: {mutated!r}")

    # The sweep emptied the cache; the warmed pair must now miss.
    hits2, misses2, gauges = cache_counters(cj)
    if gauges["server.cache.size"] != 0:
        sys.exit(f"mutation did not sweep the route cache: {gauges!r}")
    if hits2 != hits1:
        sys.exit(f"cache hits moved without a route: {hits1} -> {hits2}")
    third = expect_ok(cj.rpc(route_req), "route (post-mutation)")
    hits3, misses3, _ = cache_counters(cj)
    if misses3 != misses2 + 1 or hits3 != hits2:
        sys.exit(
            "post-mutation route was served from a stale cache entry: "
            f"{hits2},{misses2} -> {hits3},{misses3}"
        )
    if third["text"] != post_route:
        sys.exit(
            "post-mutation route differs from the CLI replay of the same script:\n"
            f"served: {third['text']!r}\nexpected: {post_route!r}"
        )
    if third["text"] == first["text"]:
        sys.exit("mutation script did not change the reference route; smoke is vacuous")
    print(f"mutate ok: epoch 1, generation {gen_after_mutate}, cache swept and re-missed")

    # Binary codec: identical reply, shared cache (this one is a hit).
    btext = expect_ok(cb.rpc({"id": 5, **route_req}), "route (binary)")
    if btext != third:
        sys.exit(f"binary route reply differs from JSON: {btext!r} vs {third!r}")
    hits4, misses4, _ = cache_counters(cj)
    if hits4 != hits3 + 1 or misses4 != misses3:
        sys.exit(f"binary route did not share the cache: {hits3},{misses3} -> {hits4},{misses4}")

    # Mutate over the binary codec too: one more epoch, swept again.
    bmut = expect_ok(
        cb.rpc({"op": "mutate", "instance": "net", "ops": ["resample:40"], "seed": 5}),
        "mutate (binary)",
    )
    if bmut["epoch"] != 2 or bmut["generation"] != gen_after_mutate + 1:
        sys.exit(f"binary mutate did not advance epoch/generation: {bmut!r}")
    _, _, gauges = cache_counters(cj)
    if gauges["server.cache.size"] != 0:
        sys.exit(f"binary mutation did not sweep the route cache: {gauges!r}")
    print(f"binary mutate ok: epoch 2, generation {bmut['generation']}")

    # Churn: baseline + one row per epoch, generation bumped per epoch.
    epochs = 2
    churned = expect_ok(
        cj.rpc({"op": "churn", "instance": "net", "scenario": "uniform",
                "epochs": epochs, "events": 8, "count": 20, "seed": 21,
                "pair_seed": 2}),
        "churn",
    )
    if churned["scenario"] != "uniform":
        sys.exit(f"churn echoed the wrong scenario: {churned!r}")
    rows = churned["epochs"]
    if len(rows) != epochs + 1:
        sys.exit(f"churn: expected baseline + {epochs} rows, got {len(rows)}")
    for i, row in enumerate(rows):
        for key in ("epoch", "live", "edges", "attempted", "delivered",
                    "mean_steps", "mean_stretch"):
            if key not in row:
                sys.exit(f"churn row missing {key!r}: {row!r}")
        if row["attempted"] != 20 or row["delivered"] > row["attempted"]:
            sys.exit(f"churn row counts off: {row!r}")
        if i > 0 and row["epoch"] != rows[i - 1]["epoch"] + 1:
            sys.exit(f"churn epochs not ascending: {rows!r}")
    if churned["generation"] != bmut["generation"] + epochs:
        sys.exit(
            f"churn generation should advance once per epoch: "
            f"{bmut['generation']} -> {churned['generation']}"
        )
    print(f"churn ok: {len(rows)} rows, generation {churned['generation']}")

    expect_ok(cj.rpc({"op": "drain"}), "drain")
    print("churn smoke passed")


if __name__ == "__main__":
    main()
