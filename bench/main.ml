(* Benchmark / reproduction harness.

   Default mode — Phase 1 regenerates every experiment table of the paper
   reproduction (E1-E17, cf. DESIGN.md section 3 and EXPERIMENTS.md) at
   Standard scale; set SMALLWORLD_BENCH_QUICK=1 for a fast smoke run.
   Each experiment is timed with Obs.Span (its phase tree is printed
   under the tables), and with `--obs-out FILE` a JSONL run manifest —
   span tree plus metric snapshot per experiment — is written alongside,
   so successive bench runs are diffable at phase granularity.  Phase 2
   runs Bechamel micro-benchmarks: one Test.make per experiment kernel
   (a miniature version of its workload) plus the core operations
   (generators, routing protocols, BFS).

   Record/diff modes — continuous-benchmark telemetry over the
   smallworld.bench.v1 schema (Obs.Bench): `record` runs each experiment
   k times (plus the text-vs-binary snapshot-load pair) and writes
   BENCH_<label>.json (median/min wall time, allocated bytes, counter
   snapshots, git revision); `diff` compares two such files and exits
   non-zero on a noise-adjusted median regression.

   Scale mode — the out-of-core axis: for each n (doubling from --n,
   fixed seed) the sweep runs generate (heap cell sampler), spill
   (sharded generation), merge (spills -> binary snapshot), heap-route
   and mmap-route as separate forked phases, recording wall time,
   allocation and peak RSS (VmHWM) per phase into the same report
   schema, so `diff` gates the memory ceiling alongside time and
   allocation (--rss-threshold).

     dune exec bench/main.exe -- [--obs-out FILE] [--jobs N]
     dune exec bench/main.exe -- record [--runs K] [--label L] [--seed N]
                                        [--out FILE] [--jobs N]
     dune exec bench/main.exe -- scale [--n N] [--doublings K] [--shards S]
                                       [--routes R] [--label L] [--seed N]
                                       [--out FILE] [--dir DIR] [--keep]
                                       [--max-mmap-rss-ratio X] [--jobs N]
     dune exec bench/main.exe -- diff BASELINE CURRENT [--threshold PCT]
                                      [--alloc-threshold PCT] [--rss-threshold PCT]
                                      [--advisory-time]

   --jobs N (0 = all cores) sizes the shared Parallel pool; otherwise
   SMALLWORLD_JOBS applies.  Reports remember the job count and `diff`
   refuses to compare reports recorded at different counts.  *)

open Bechamel
open Toolkit

(* All fatal exits go through the shared error taxonomy so bench and the
   route server agree on codes: perf-regression -> 1, caller errors
   (usage / io / incomparable) -> 2, matching what CI gates on. *)
let die code fmt =
  Printf.ksprintf
    (fun msg ->
      let e = Api.Error.make code "%s" msg in
      prerr_endline (Api.Error.to_string e);
      exit (Api.Error.exit_code e.Api.Error.code))
    fmt

let scale =
  match Sys.getenv_opt "SMALLWORLD_BENCH_QUICK" with
  | Some ("1" | "true" | "yes") -> Experiments.Context.Quick
  | Some _ | None -> Experiments.Context.Standard

let obs_out =
  let rec scan = function
    | "--obs-out" :: path :: _ -> Some path
    | _ :: rest -> scan rest
    | [] -> None
  in
  scan (Array.to_list Sys.argv)

(* Resolve --jobs (0 = all cores) before anything touches the shared
   pool; without the flag the pool falls back to SMALLWORLD_JOBS. *)
let () =
  let rec scan = function
    | "--jobs" :: v :: _ -> (
        match int_of_string_opt v with
        | Some j when j >= 0 -> Parallel.Global.set_jobs j
        | Some _ | None -> die Api.Error.Usage "--jobs expects a non-negative integer")
    | _ :: rest -> scan rest
    | [] -> ()
  in
  scan (Array.to_list Sys.argv)

let seed = 42

let run_experiment_tables () =
  print_endline "==============================================================";
  print_endline " Phase 1: paper-reproduction tables (one block per experiment)";
  print_endline "==============================================================\n";
  let ctx = Experiments.Context.make ~seed ~scale () in
  let manifest_oc = Option.map open_out obs_out in
  List.iter
    (fun e ->
      (* Fresh counters, trace and event buffer per experiment so the
         manifest line (and the printed tree) attribute to this
         experiment alone. *)
      Obs.Metrics.reset Obs.Metrics.default;
      Obs.Trace.clear ();
      Obs.Events.clear ();
      let tables, span = Experiments.Registry.run_traced e ctx in
      print_string (Experiments.Registry.render_header e);
      List.iter (fun t -> print_string (Stats.Table.render t); print_newline ()) tables;
      (match span with
      | Some s ->
          print_string (Obs.Trace.render s);
          Printf.printf "(%s finished in %.1fs)\n\n%!" e.Experiments.Registry.id s.Obs.Span.wall_s
      | None ->
          Printf.printf "(%s finished; timing disabled via SMALLWORLD_OBS=0)\n\n%!"
            e.Experiments.Registry.id);
      Option.iter
        (fun oc ->
          output_string oc
            (Obs.Export.manifest_line ~experiment:e.Experiments.Registry.id ~seed
               ~scale:(Experiments.Context.scale_name ctx)
               ~registry:Obs.Metrics.default ~span ());
          output_char oc '\n';
          flush oc)
        manifest_oc)
    Experiments.Registry.all;
  Option.iter close_out manifest_oc;
  Option.iter (Printf.printf "run manifest written to %s\n\n%!") obs_out

(* ------------------------------------------------------------------ *)
(* Phase 2: Bechamel micro-benchmarks                                   *)

(* Shared fixtures, built once outside the timed region. *)
let fixture_girg =
  lazy
    (let params = Girg.Params.make ~dim:2 ~beta:2.5 ~c:0.15 ~n:20_000 () in
     let inst = Girg.Instance.generate ~rng:(Prng.Rng.create ~seed:3) params in
     let giant =
       Sparse_graph.Components.giant_members (Sparse_graph.Components.compute inst.graph)
     in
     (inst, giant))

let fixture_sparse_girg =
  lazy
    (let params = Girg.Params.make ~dim:2 ~beta:2.6 ~c:0.07 ~w_min:0.6 ~n:20_000 () in
     let inst = Girg.Instance.generate ~rng:(Prng.Rng.create ~seed:4) params in
     let giant =
       Sparse_graph.Components.giant_members (Sparse_graph.Components.compute inst.graph)
     in
     (inst, giant))

let fixture_hrg =
  lazy (Hyperbolic.Hrg.generate ~rng:(Prng.Rng.create ~seed:5)
          (Hyperbolic.Hrg.make ~alpha_h:0.75 ~radius_c:(-1.0) ~n:20_000 ()))

let route_bench ~name ~protocol ~sparse =
  Test.make ~name
    (Staged.stage (fun () ->
         let inst, giant = Lazy.force (if sparse then fixture_sparse_girg else fixture_girg) in
         let rng = Prng.Rng.create ~seed:(Hashtbl.hash name) in
         let i, j = Prng.Dist.sample_distinct_pair rng ~n:(Array.length giant) in
         let objective = Greedy_routing.Objective.girg_phi inst ~target:giant.(j) in
         ignore
           (Greedy_routing.Protocol.run protocol ~graph:inst.graph ~objective
              ~source:giant.(i) ())))

(* One miniature kernel per (cheap enough) experiment id, so regressions in
   any reproduced pipeline show up as timing changes here.  The heavyweight
   sweep experiments are covered through their per-unit workloads below. *)
let experiment_kernels =
  let mini_ctx = Experiments.Context.make ~seed:1 ~scale:Experiments.Context.Quick () in
  let kernel id =
    match Experiments.Registry.find id with
    | None -> failwith ("unknown experiment " ^ id)
    | Some e -> Test.make ~name:("kernel/" ^ id) (Staged.stage (fun () -> ignore (e.run mini_ctx)))
  in
  List.map kernel [ "E4"; "E5"; "E8"; "E9"; "E11"; "E12"; "E13"; "E15"; "E16"; "E17" ]

let generator_benches =
  [
    Test.make ~name:"girg/cell n=10k d=2"
      (Staged.stage (fun () ->
           let params = Girg.Params.make ~dim:2 ~beta:2.5 ~c:0.15 ~n:10_000 () in
           ignore
             (Girg.Instance.generate ~sampler:Girg.Instance.Use_cell
                ~rng:(Prng.Rng.create ~seed:11) params)));
    Test.make ~name:"girg/naive n=1k d=2"
      (Staged.stage (fun () ->
           let params = Girg.Params.make ~dim:2 ~beta:2.5 ~c:0.15 ~n:1000 () in
           ignore
             (Girg.Instance.generate ~sampler:Girg.Instance.Use_naive
                ~rng:(Prng.Rng.create ~seed:12) params)));
    Test.make ~name:"girg/cell n=10k threshold"
      (Staged.stage (fun () ->
           let params =
             Girg.Params.make ~dim:2 ~beta:2.5 ~alpha:Girg.Params.Infinite ~c:0.15 ~n:10_000 ()
           in
           ignore (Girg.Instance.generate ~rng:(Prng.Rng.create ~seed:13) params)));
    Test.make ~name:"hrg/cell n=10k"
      (Staged.stage (fun () ->
           ignore
             (Hyperbolic.Hrg.generate ~rng:(Prng.Rng.create ~seed:14)
                (Hyperbolic.Hrg.make ~alpha_h:0.75 ~radius_c:(-1.0) ~n:10_000 ()))));
    Test.make ~name:"chung_lu/n=30k"
      (Staged.stage (fun () ->
           ignore
             (Girg.Chung_lu.generate_power_law
                ~rng:(Prng.Rng.create ~seed:18) ~n:30_000 ~beta:2.5 ~w_min:2.0)));
    Test.make ~name:"embed/tree-layout n=10k"
      (Staged.stage (fun () ->
           let h = Lazy.force fixture_hrg in
           ignore
             (Hyperbolic.Embed.infer ~rng:(Prng.Rng.create ~seed:19)
                ~graph:h.Hyperbolic.Hrg.graph ())));
    Test.make ~name:"kleinberg/side=64"
      (Staged.stage (fun () ->
           ignore
             (Kleinberg.Lattice.generate ~rng:(Prng.Rng.create ~seed:15)
                (Kleinberg.Lattice.make ~side:64 ()))));
  ]

let routing_benches =
  [
    route_bench ~name:"route/greedy dense" ~protocol:Greedy_routing.Protocol.Greedy ~sparse:false;
    route_bench ~name:"route/phi-dfs sparse" ~protocol:Greedy_routing.Protocol.Patch_dfs
      ~sparse:true;
    route_bench ~name:"route/history sparse" ~protocol:Greedy_routing.Protocol.Patch_history
      ~sparse:true;
    route_bench ~name:"route/gravity sparse" ~protocol:Greedy_routing.Protocol.Gravity_pressure
      ~sparse:true;
    Test.make ~name:"route/hyperbolic greedy"
      (Staged.stage (fun () ->
           let h = Lazy.force fixture_hrg in
           let rng = Prng.Rng.create ~seed:16 in
           let s, t = Prng.Dist.sample_distinct_pair rng ~n:(Sparse_graph.Graph.n h.graph) in
           let objective = Greedy_routing.Objective.hyperbolic h ~target:t in
           ignore (Greedy_routing.Greedy.route ~graph:h.graph ~objective ~source:s ())));
    Test.make ~name:"bfs/bidirectional pair"
      (Staged.stage (fun () ->
           let inst, giant = Lazy.force fixture_girg in
           let rng = Prng.Rng.create ~seed:17 in
           let i, j = Prng.Dist.sample_distinct_pair rng ~n:(Array.length giant) in
           ignore (Sparse_graph.Bfs.distance inst.graph ~source:giant.(i) ~target:giant.(j))));
  ]

let all_benches =
  Test.make_grouped ~name:"smallworld" ~fmt:"%s %s"
    (generator_benches @ routing_benches @ experiment_kernels)

let run_benchmarks () =
  print_endline "==============================================================";
  print_endline " Phase 2: Bechamel micro-benchmarks (OLS estimate per run)";
  print_endline "==============================================================\n";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 1.5) ~stabilize:true ~kde:(Some 10) ()
  in
  let raw = Benchmark.all cfg instances all_benches in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  let merged = Analyze.merge ols instances results in
  match Hashtbl.find_opt merged (Measure.label Instance.monotonic_clock) with
  | None -> print_endline "no monotonic clock results?"
  | Some tbl ->
      let rows =
        Hashtbl.fold
          (fun name ols_result acc ->
            let ns =
              match Analyze.OLS.estimates ols_result with
              | Some (est :: _) -> est
              | Some [] | None -> nan
            in
            (name, ns) :: acc)
          tbl []
      in
      let rows = List.sort compare rows in
      Printf.printf "  %-42s %15s %12s\n" "benchmark" "ns/run" "ms/run";
      Printf.printf "  %s\n" (String.make 71 '-');
      List.iter
        (fun (name, ns) -> Printf.printf "  %-42s %15.0f %12.3f\n" name ns (ns /. 1e6))
        rows

(* ------------------------------------------------------------------ *)
(* record / diff: continuous-benchmark telemetry (smallworld.bench.v1) *)

let opt_value args key ~default =
  let rec scan = function
    | k :: v :: _ when k = key -> v
    | _ :: rest -> scan rest
    | [] -> default
  in
  scan args

let record args =
  let runs = max 1 (int_of_string (opt_value args "--runs" ~default:"3")) in
  let label = opt_value args "--label" ~default:"current" in
  let rseed = int_of_string (opt_value args "--seed" ~default:(string_of_int seed)) in
  let out = opt_value args "--out" ~default:("BENCH_" ^ label ^ ".json") in
  let ctx = Experiments.Context.make ~seed:rseed ~scale () in
  let entries =
    List.map
      (fun e ->
        let id = e.Experiments.Registry.id in
        let walls = ref [] in
        let alloc = ref 0.0 in
        for _ = 1 to runs do
          (* Fresh counters per run so the snapshot describes one run; the
             wall clock is read directly, so recording also works under
             SMALLWORLD_OBS=0 (counters then come back zeroed). *)
          Obs.Metrics.reset Obs.Metrics.default;
          Obs.Trace.clear ();
          Obs.Events.clear ();
          let a0 = Gc.allocated_bytes () in
          let t0 = Unix.gettimeofday () in
          ignore (e.Experiments.Registry.run ctx);
          walls := (Unix.gettimeofday () -. t0) :: !walls;
          alloc := Gc.allocated_bytes () -. a0
        done;
        let entry =
          Obs.Bench.make_entry ~id ~wall_s:!walls ~alloc_bytes:!alloc
            ~counters:(Obs.Bench.counters_of_registry Obs.Metrics.default) ()
        in
        Printf.printf "  %-4s median %7.3fs  min %7.3fs  (%d runs)\n%!" id entry.Obs.Bench.median_s
          entry.Obs.Bench.min_s runs;
        entry)
      Experiments.Registry.all
  in
  (* Snapshot-codec pair: load the same instance through the v1 text and
     v2 binary codecs.  Committing both entries in the baseline pins the
     binary loader's speedup — if binary load ever drifts toward text
     parsing speed, `bench diff` flags it like any other regression. *)
  let codec_entries =
    let params = Girg.Params.make ~dim:2 ~beta:2.5 ~c:0.15 ~n:30_000 () in
    let inst = Girg.Instance.generate ~rng:(Prng.Rng.create ~seed:rseed) params in
    let text_path = Filename.temp_file "bench-snap" ".girg" in
    let bin_path = Filename.temp_file "bench-snap" ".girgb" in
    Girg.Store.save ~path:text_path inst;
    Girg.Store.save_binary ~path:bin_path inst;
    let time_load id path =
      let walls = ref [] and alloc = ref 0.0 in
      for _ = 1 to runs do
        let a0 = Gc.allocated_bytes () in
        let t0 = Unix.gettimeofday () in
        (match Girg.Store.load ~path with
        | Ok _ -> ()
        | Error e -> die Api.Error.Io "%s: %s" path e);
        walls := (Unix.gettimeofday () -. t0) :: !walls;
        alloc := Gc.allocated_bytes () -. a0
      done;
      let entry = Obs.Bench.make_entry ~id ~wall_s:!walls ~alloc_bytes:!alloc ~counters:[] () in
      Printf.printf "  %-11s median %7.3fs  min %7.3fs  (%d runs)\n%!" id
        entry.Obs.Bench.median_s entry.Obs.Bench.min_s runs;
      entry
    in
    Fun.protect
      ~finally:(fun () ->
        Sys.remove text_path;
        Sys.remove bin_path)
      (fun () -> [ time_load "load/text" text_path; time_load "load/binary" bin_path ])
  in
  let entries = entries @ codec_entries in
  let report =
    {
      Obs.Bench.label;
      git_rev = Obs.Export.git_rev ();
      scale = Experiments.Context.scale_name ctx;
      seed = rseed;
      jobs = Parallel.Global.jobs ();
      entries;
    }
  in
  Out_channel.with_open_text out (fun oc ->
      output_string oc (Obs.Bench.to_string report);
      output_char oc '\n');
  Printf.printf "bench report (%s) written to %s\n" Obs.Bench.schema_version out

let load_report path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e -> die Api.Error.Io "%s" e
  | contents -> (
      match Obs.Bench.of_string contents with
      | Ok r -> r
      | Error e -> die Api.Error.Io "cannot read %s: %s" path e)

(* --- scale: the out-of-core sweep ---------------------------------- *)

(* Peak resident set of this process in bytes, from /proc/self/status
   VmHWM (0 when the file or the field is unavailable, e.g. non-Linux —
   entries then carry rss_bytes = 0 = "not recorded" and the RSS gate
   stays off). *)
let peak_rss_bytes () =
  match In_channel.with_open_text "/proc/self/status" In_channel.input_all with
  | exception Sys_error _ -> 0.0
  | contents ->
      let value_kb line key =
        let kl = String.length key in
        if String.length line >= kl && String.sub line 0 kl = key then (
          (* "VmHWM:   123456 kB" — keep the digits, ignore tabs/unit. *)
          let buf = Buffer.create 12 in
          String.iter (fun c -> if c >= '0' && c <= '9' then Buffer.add_char buf c) line;
          int_of_string_opt (Buffer.contents buf))
        else None
      in
      String.split_on_char '\n' contents
      |> List.find_map (fun l -> value_kb l "VmHWM:")
      |> Option.fold ~none:0.0 ~some:(fun kb -> float_of_int kb *. 1024.0)

(* Run one sweep phase in a forked child so its peak RSS is isolated:
   VmHWM is monotone within a process, so phases measured in-process
   would all inherit the largest predecessor's peak (and a freed heap
   instance would still count against the mmap phase).  The child
   reports wall time, allocated bytes, peak RSS and a few labelled
   counts over a pipe; file artifacts (spills, snapshots) land on disk
   where the next phase finds them. *)
let run_phase ~id f =
  flush stdout;
  flush stderr;
  let r, w = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
      Unix.close r;
      let oc = Unix.out_channel_of_descr w in
      let t0 = Unix.gettimeofday () in
      let a0 = Gc.allocated_bytes () in
      (match f () with
      | counters ->
          Printf.fprintf oc "ok %.17g %.17g %.17g %s\n%!"
            (Unix.gettimeofday () -. t0)
            (Gc.allocated_bytes () -. a0)
            (peak_rss_bytes ())
            (String.concat " " (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) counters))
      | exception e -> Printf.fprintf oc "err %s\n%!" (Printexc.to_string e));
      exit 0
  | pid -> (
      Unix.close w;
      let ic = Unix.in_channel_of_descr r in
      let line = try input_line ic with End_of_file -> "err child produced no result" in
      close_in ic;
      let _, status = Unix.waitpid [] pid in
      match (status, String.split_on_char ' ' line) with
      | Unix.WEXITED 0, "ok" :: wall :: alloc :: rss :: counters ->
          let num what s =
            match float_of_string_opt s with
            | Some f -> f
            | None -> die Api.Error.Io "scale phase %s: bad %s %S from child" id what s
          in
          let counter kv =
            match String.index_opt kv '=' with
            | Some i ->
                Option.map
                  (fun v -> (String.sub kv 0 i, v))
                  (int_of_string_opt (String.sub kv (i + 1) (String.length kv - i - 1)))
            | None -> None
          in
          (num "wall" wall, num "alloc" alloc, num "rss" rss, List.filter_map counter counters)
      | _, "err" :: rest ->
          die Api.Error.Io "scale phase %s failed: %s" id (String.concat " " rest)
      | _, _ -> die Api.Error.Io "scale phase %s: child died (%s)" id line)

(* The routed workload both load paths share: [routes] greedy routes
   between uniform distinct pairs.  Failures (dead ends outside the
   giant) are fine — the phase measures traversal cost and residency,
   not delivery rates. *)
let route_workload inst ~routes ~seed =
  let g = inst.Girg.Instance.graph in
  let n = Sparse_graph.Graph.n g in
  let rng = Prng.Rng.create ~seed in
  let delivered = ref 0 in
  for _ = 1 to routes do
    let i, j = Prng.Dist.sample_distinct_pair rng ~n in
    let objective = Greedy_routing.Objective.girg_phi inst ~target:j in
    let outcome =
      Greedy_routing.Protocol.run Greedy_routing.Protocol.Greedy ~graph:g ~objective
        ~source:i ()
    in
    if outcome.Greedy_routing.Outcome.status = Greedy_routing.Outcome.Delivered then
      incr delivered
  done;
  [ ("routes", routes); ("delivered", !delivered) ]

let scale_sweep args =
  let int_arg key ~default =
    match int_of_string_opt (opt_value args key ~default:(string_of_int default)) with
    | Some v when v > 0 -> v
    | Some _ | None -> die Api.Error.Usage "%s expects a positive integer" key
  in
  let n0 = int_arg "--n" ~default:65_536 in
  let doublings =
    match int_of_string_opt (opt_value args "--doublings" ~default:"2") with
    | Some v when v >= 0 -> v
    | Some _ | None -> die Api.Error.Usage "--doublings expects a non-negative integer"
  in
  let shards = int_arg "--shards" ~default:4 in
  let routes = int_arg "--routes" ~default:256 in
  let sseed = int_arg "--seed" ~default:seed in
  let label = opt_value args "--label" ~default:"scale" in
  let out = opt_value args "--out" ~default:("BENCH_" ^ label ^ ".json") in
  let max_mmap_ratio =
    match opt_value args "--max-mmap-rss-ratio" ~default:"" with
    | "" -> None
    | v -> (
        match float_of_string_opt v with
        | Some f when f > 0.0 -> Some f
        | Some _ | None -> die Api.Error.Usage "--max-mmap-rss-ratio expects a positive number")
  in
  let keep = List.mem "--keep" args in
  let dir =
    match opt_value args "--dir" ~default:"" with
    | "" ->
        let d =
          Filename.concat (Filename.get_temp_dir_name ())
            (Printf.sprintf "smallworld-scale.%d" (Unix.getpid ()))
        in
        (try Unix.mkdir d 0o700
         with Unix.Unix_error (e, _, _) ->
           die Api.Error.Io "cannot create %s: %s" d (Unix.error_message e));
        d
    | d ->
        if not (Sys.file_exists d && Sys.is_directory d) then
          die Api.Error.Io "--dir %s: not a directory" d;
        d
  in
  (* Worker domains do not survive fork, so the parent pool must be
     joined before the first phase child; each child re-creates a pool
     at the requested parallelism for itself. *)
  let jobs = Parallel.Global.jobs () in
  Parallel.Global.set_jobs 1;
  let made = ref [] in
  let artifact name =
    let p = Filename.concat dir name in
    if not (List.mem p !made) then made := p :: !made;
    p
  in
  let entries = ref [] in
  let rss_of = Hashtbl.create 16 in
  let phase ~nv name f =
    let id = Printf.sprintf "scale/n%d/%s" nv name in
    let wall, alloc, rss, counters =
      run_phase ~id (fun () ->
          Parallel.Global.set_jobs jobs;
          f ())
    in
    Hashtbl.replace rss_of (nv, name) rss;
    Printf.printf "  %-28s %8.3fs  alloc %8.1fMB  peak rss %8.1fMB%s\n%!" id wall
      (alloc /. 1_048_576.0) (rss /. 1_048_576.0)
      (match List.assoc_opt "edges" counters with
      | Some e -> Printf.sprintf "  (%d edges)" e
      | None -> "");
    entries :=
      Obs.Bench.make_entry ~rss_bytes:rss ~id ~wall_s:[ wall ] ~alloc_bytes:alloc ~counters ()
      :: !entries
  in
  let gate_failures = ref [] in
  let ns = List.init (doublings + 1) (fun i -> n0 lsl i) in
  List.iter
    (fun nv ->
      let params = Girg.Params.make ~dim:2 ~beta:2.5 ~c:0.15 ~n:nv () in
      let snap = artifact (Printf.sprintf "n%d.girgb" nv) in
      let spills =
        List.init shards (fun i -> artifact (Printf.sprintf "n%d.shard%d.spill" nv i))
      in
      phase ~nv "generate" (fun () ->
          let inst = Girg.Instance.generate ~rng:(Prng.Rng.create ~seed:sseed) params in
          [ ("edges", Sparse_graph.Graph.m inst.Girg.Instance.graph) ]);
      phase ~nv "spill" (fun () ->
          let edges = ref 0 in
          List.iteri
            (fun i path ->
              let h = Girg.Shard.generate_spill ~path ~seed:sseed ~shards ~shard:i params in
              edges := !edges + h.Girg.Shard.edges)
            spills;
          [ ("edges", !edges); ("shards", shards) ]);
      phase ~nv "merge" (fun () ->
          match Girg.Shard.merge ~paths:spills () with
          | Error e -> failwith e
          | Ok inst ->
              Girg.Store.save_binary ~path:snap inst;
              [ ("edges", Sparse_graph.Graph.m inst.Girg.Instance.graph) ]);
      phase ~nv "heap-route" (fun () ->
          match Girg.Store.load ~path:snap with
          | Error e -> failwith e
          | Ok inst -> route_workload inst ~routes ~seed:sseed);
      phase ~nv "mmap-route" (fun () ->
          match Girg.Store.load_mmap ~path:snap with
          | Error e -> failwith e
          | Ok inst -> route_workload inst ~routes ~seed:sseed);
      match (Hashtbl.find_opt rss_of (nv, "mmap-route"), Hashtbl.find_opt rss_of (nv, "heap-route")) with
      | Some m, Some h when m > 0.0 && h > 0.0 ->
          let ratio = m /. h in
          Printf.printf "  n=%-10d mmap-route peak rss is %.2fx the heap-route path\n%!" nv ratio;
          Option.iter
            (fun bound ->
              if ratio > bound then
                gate_failures :=
                  Printf.sprintf "n=%d: mmap-route rss %.1fMB is %.2fx heap-route (bound %.2fx)"
                    nv (m /. 1_048_576.0) ratio bound
                  :: !gate_failures)
            max_mmap_ratio
      | _ -> Printf.printf "  n=%-10d rss not measured (no /proc); ratio gate skipped\n%!" nv)
    ns;
  let report =
    {
      Obs.Bench.label;
      git_rev = Obs.Export.git_rev ();
      scale = Printf.sprintf "scale:n%d..%d:shards%d" n0 (n0 lsl doublings) shards;
      seed = sseed;
      jobs;
      entries = List.rev !entries;
    }
  in
  Out_channel.with_open_text out (fun oc ->
      output_string oc (Obs.Bench.to_string report);
      output_char oc '\n');
  Printf.printf "scale report (%s) written to %s\n" Obs.Bench.schema_version out;
  if not keep then begin
    List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) !made;
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end
  else Printf.printf "artifacts kept under %s\n" dir;
  match !gate_failures with
  | [] -> ()
  | fs ->
      List.iter (Printf.printf "FAIL: %s\n") (List.rev fs);
      exit (Api.Error.exit_code Api.Error.Regression)

(* --- serving-SLO diffs over smallworld.load.v1 --------------------- *)

(* `diff` gates loadgen reports with the same interface it gates bench
   reports: relative regressions against a baseline (throughput drop /
   p99 growth beyond --threshold) plus absolute SLOs on the current
   report (--max-p50-ms / --max-p99-ms / --max-refusal-rate) and an
   improvement requirement (--expect-speedup R: >= R x throughput or
   <= p99 / R vs the baseline).  --advisory-time downgrades every
   timing verdict to a warning; the refusal-rate SLO always gates. *)

let raw_json path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e -> die Api.Error.Io "%s" e
  | contents -> (
      match Obs.Export.json_of_string (String.trim contents) with
      | Ok j -> j
      | Error e -> die Api.Error.Io "cannot parse %s: %s" path e)

let json_schema = function
  | Obs.Export.Obj _ as doc -> (
      match Obs.Export.member "schema" doc with
      | Some (Obs.Export.Str s) -> s
      | _ -> "")
  | _ -> ""

let load_schema_version = "smallworld.load.v1"

let diff_load args ~advisory_time ~threshold_pct base_path cur_path baseline current =
  let number ~path doc name =
    match Obs.Export.member name doc with
    | Some (Obs.Export.Float f) -> f
    | Some (Obs.Export.Int i) -> float_of_int i
    | _ -> die Api.Error.Io "%s: missing %s field" path name
  in
  let text ~path doc name =
    match Obs.Export.member name doc with
    | Some (Obs.Export.Str s) -> s
    | _ -> die Api.Error.Io "%s: missing %s field" path name
  in
  let lat ~path doc q =
    match Obs.Export.member "latency_ms" doc with
    | Some l -> number ~path l q
    | None -> die Api.Error.Io "%s: missing latency_ms" path
  in
  let opt_gate key =
    match opt_value args key ~default:"" with
    | "" -> None
    | v -> (
        match float_of_string_opt v with
        | Some f -> Some f
        | None -> die Api.Error.Usage "%s expects a number, got %S" key v)
  in
  let b_label = text ~path:base_path baseline "label"
  and c_label = text ~path:cur_path current "label" in
  Printf.printf "schema %s\n" load_schema_version;
  Printf.printf "baseline %s (%s codec, %d conns, rate %g)  vs  current %s (%s codec, %d conns, rate %g)\n"
    b_label (text ~path:base_path baseline "codec")
    (int_of_float (number ~path:base_path baseline "connections"))
    (number ~path:base_path baseline "rate")
    c_label (text ~path:cur_path current "codec")
    (int_of_float (number ~path:cur_path current "connections"))
    (number ~path:cur_path current "rate");
  (* Throughput scales with the connection count and pacing, so a diff
     across those knobs would gate on an apples-to-oranges comparison
     (mirroring the bench-report cross-jobs refusal). *)
  List.iter
    (fun key ->
      let b = number ~path:base_path baseline key
      and c = number ~path:cur_path current key in
      if b <> c then
        die Api.Error.Incomparable "cannot compare: baseline %s %g, current %s %g" key b
          key c)
    [ "connections"; "rate" ];
  let b_tp = number ~path:base_path baseline "throughput_rps"
  and c_tp = number ~path:cur_path current "throughput_rps"
  and b_p99 = lat ~path:base_path baseline "p99"
  and c_p99 = lat ~path:cur_path current "p99"
  and c_p50 = lat ~path:cur_path current "p50"
  and c_refusal = number ~path:cur_path current "refusal_rate" in
  Printf.printf "  throughput %10.0f -> %10.0f req/s\n" b_tp c_tp;
  Printf.printf "  p50        %10.3f -> %10.3f ms\n" (lat ~path:base_path baseline "p50") c_p50;
  Printf.printf "  p99        %10.3f -> %10.3f ms\n" b_p99 c_p99;
  Printf.printf "  refusals   %10.4f -> %10.4f\n"
    (number ~path:base_path baseline "refusal_rate") c_refusal;
  let timing_failures = ref [] and hard_failures = ref [] in
  let timing_gate cond fmt =
    Printf.ksprintf (fun msg -> if cond then timing_failures := msg :: !timing_failures) fmt
  in
  if b_tp > 0.0 then
    timing_gate ((b_tp -. c_tp) /. b_tp *. 100.0 > threshold_pct)
      "throughput dropped %.0f%% (beyond %.0f%%)" ((b_tp -. c_tp) /. b_tp *. 100.0)
      threshold_pct;
  if b_p99 > 0.0 then
    timing_gate ((c_p99 -. b_p99) /. b_p99 *. 100.0 > threshold_pct)
      "p99 grew %.0f%% (beyond %.0f%%)" ((c_p99 -. b_p99) /. b_p99 *. 100.0) threshold_pct;
  Option.iter
    (fun bound -> timing_gate (c_p50 > bound) "p50 %.3f ms over the %.3f ms SLO" c_p50 bound)
    (opt_gate "--max-p50-ms");
  Option.iter
    (fun bound -> timing_gate (c_p99 > bound) "p99 %.3f ms over the %.3f ms SLO" c_p99 bound)
    (opt_gate "--max-p99-ms");
  Option.iter
    (fun r ->
      timing_gate
        (not (c_tp >= r *. b_tp || (b_p99 > 0.0 && c_p99 <= b_p99 /. r)))
        "expected %gx speedup: throughput %.0f vs %.0f req/s and p99 %.3f vs %.3f ms" r c_tp
        b_tp c_p99 b_p99)
    (opt_gate "--expect-speedup");
  Option.iter
    (fun bound ->
      if c_refusal > bound then
        hard_failures :=
          Printf.sprintf "refusal rate %.4f over the %.4f SLO" c_refusal bound
          :: !hard_failures)
    (opt_gate "--max-refusal-rate");
  List.iter (Printf.printf "FAIL: %s\n") !hard_failures;
  List.iter
    (fun msg ->
      if advisory_time then Printf.printf "WARN: %s (advisory: timing not gated)\n" msg
      else Printf.printf "FAIL: %s\n" msg)
    !timing_failures;
  if !hard_failures <> [] || ((not advisory_time) && !timing_failures <> []) then
    exit (Api.Error.exit_code Api.Error.Regression)
  else print_endline "OK: serving SLOs met"

let diff args =
  let threshold_pct = float_of_string (opt_value args "--threshold" ~default:"25") in
  let alloc_threshold_pct =
    float_of_string (opt_value args "--alloc-threshold" ~default:"100")
  in
  let rss_threshold_pct = float_of_string (opt_value args "--rss-threshold" ~default:"50") in
  (* On shared CI runners wall time flaps with machine load while
     allocation stays deterministic: --advisory-time reports timing
     verdicts but only allocation regressions affect the exit code. *)
  let advisory_time = List.mem "--advisory-time" args in
  (* Skip the values of value-taking flags when collecting the two
     positional report paths. *)
  let value_keys =
    [ "--threshold"; "--alloc-threshold"; "--rss-threshold"; "--max-p50-ms"; "--max-p99-ms";
      "--max-refusal-rate"; "--expect-speedup"; "--jobs" ]
  in
  let rec positionals = function
    | [] -> []
    | k :: _ :: rest when List.mem k value_keys -> positionals rest
    | a :: rest when String.length a > 0 && a.[0] = '-' -> positionals rest
    | a :: rest -> a :: positionals rest
  in
  match positionals args with
  | [ base_path; cur_path ]
    when json_schema (raw_json base_path) = load_schema_version
         || json_schema (raw_json cur_path) = load_schema_version ->
      let base_doc = raw_json base_path and cur_doc = raw_json cur_path in
      let bs = json_schema base_doc and cs = json_schema cur_doc in
      if bs <> cs then
        die Api.Error.Incomparable "cannot compare: %s has schema %S, %s has %S" base_path
          bs cur_path cs;
      diff_load args ~advisory_time ~threshold_pct base_path cur_path base_doc cur_doc
  | [ base_path; cur_path ] ->
      let baseline = load_report base_path and current = load_report cur_path in
      (* The header goes out before any comparability refusal, so an
         exit-2 "cannot compare" names exactly what mismatched. *)
      Printf.printf "schema %s\n" Obs.Bench.schema_version;
      Printf.printf "baseline %s (%s, %s, jobs %d)  vs  current %s (%s, %s, jobs %d)\n"
        baseline.Obs.Bench.label baseline.Obs.Bench.git_rev baseline.Obs.Bench.scale
        baseline.Obs.Bench.jobs
        current.Obs.Bench.label current.Obs.Bench.git_rev current.Obs.Bench.scale
        current.Obs.Bench.jobs;
      if baseline.Obs.Bench.jobs <> current.Obs.Bench.jobs then
        (* Wall times scale with the job count and alloc_bytes is
           per-domain in OCaml 5, so a cross-jobs diff would gate CI on
           an apples-to-oranges comparison. *)
        die Api.Error.Incomparable
          "cannot compare: baseline recorded with --jobs %d, current with --jobs %d"
          baseline.Obs.Bench.jobs current.Obs.Bench.jobs;
      let comparisons =
        Obs.Bench.diff ~threshold_pct ~alloc_threshold_pct ~rss_threshold_pct ~baseline
          ~current ()
      in
      if baseline.Obs.Bench.scale <> current.Obs.Bench.scale then
        print_endline "warning: reports were recorded at different scales";
      print_string (Obs.Bench.render_diff comparisons);
      let time_bad = Obs.Bench.time_regressed comparisons in
      let alloc_bad = Obs.Bench.alloc_regressed comparisons in
      let rss_bad = Obs.Bench.rss_regressed comparisons in
      if alloc_bad then begin
        Printf.printf "FAIL: allocation regression beyond %.0f%% (or missing experiment)\n"
          alloc_threshold_pct;
        exit (Api.Error.exit_code Api.Error.Regression)
      end
      else if rss_bad then begin
        (* Like allocation, peak RSS is structural at a fixed seed, so
           --advisory-time does not downgrade it. *)
        Printf.printf "FAIL: peak-RSS regression beyond %.0f%%\n" rss_threshold_pct;
        exit (Api.Error.exit_code Api.Error.Regression)
      end
      else if time_bad && not advisory_time then begin
        Printf.printf "FAIL: median regression beyond %.0f%% (or missing experiment)\n" threshold_pct;
        exit (Api.Error.exit_code Api.Error.Regression)
      end
      else if time_bad then
        Printf.printf
          "WARN: median regression beyond %.0f%% (advisory: timing not gated on this runner)\n"
          threshold_pct
      else print_endline "OK: no regression beyond threshold"
  | _ ->
      die Api.Error.Usage
        "usage: bench diff BASELINE CURRENT [--threshold PCT] [--alloc-threshold PCT] \
         [--rss-threshold PCT] [--advisory-time] [--max-p50-ms X] [--max-p99-ms X] \
         [--max-refusal-rate R] [--expect-speedup R]  (load reports use the serving-SLO \
         gates)"

let () =
  match Array.to_list Sys.argv with
  | _ :: "record" :: rest -> record rest
  | _ :: "scale" :: rest -> scale_sweep rest
  | _ :: "diff" :: rest -> diff rest
  | _ ->
      run_experiment_tables ();
      run_benchmarks ()
