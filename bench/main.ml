(* Benchmark / reproduction harness.

   Default mode — Phase 1 regenerates every experiment table of the paper
   reproduction (E1-E17, cf. DESIGN.md section 3 and EXPERIMENTS.md) at
   Standard scale; set SMALLWORLD_BENCH_QUICK=1 for a fast smoke run.
   Each experiment is timed with Obs.Span (its phase tree is printed
   under the tables), and with `--obs-out FILE` a JSONL run manifest —
   span tree plus metric snapshot per experiment — is written alongside,
   so successive bench runs are diffable at phase granularity.  Phase 2
   runs Bechamel micro-benchmarks: one Test.make per experiment kernel
   (a miniature version of its workload) plus the core operations
   (generators, routing protocols, BFS).

   Record/diff modes — continuous-benchmark telemetry over the
   smallworld.bench.v1 schema (Obs.Bench): `record` runs each experiment
   k times and writes BENCH_<label>.json (median/min wall time, allocated
   bytes, counter snapshots, git revision); `diff` compares two such
   files and exits non-zero on a noise-adjusted median regression.

     dune exec bench/main.exe -- [--obs-out FILE] [--jobs N]
     dune exec bench/main.exe -- record [--runs K] [--label L] [--seed N]
                                        [--out FILE] [--jobs N]
     dune exec bench/main.exe -- diff BASELINE CURRENT [--threshold PCT]
                                      [--alloc-threshold PCT] [--advisory-time]

   --jobs N (0 = all cores) sizes the shared Parallel pool; otherwise
   SMALLWORLD_JOBS applies.  Reports remember the job count and `diff`
   refuses to compare reports recorded at different counts.  *)

open Bechamel
open Toolkit

(* All fatal exits go through the shared error taxonomy so bench and the
   route server agree on codes: perf-regression -> 1, caller errors
   (usage / io / incomparable) -> 2, matching what CI gates on. *)
let die code fmt =
  Printf.ksprintf
    (fun msg ->
      let e = Api.Error.make code "%s" msg in
      prerr_endline (Api.Error.to_string e);
      exit (Api.Error.exit_code e.Api.Error.code))
    fmt

let scale =
  match Sys.getenv_opt "SMALLWORLD_BENCH_QUICK" with
  | Some ("1" | "true" | "yes") -> Experiments.Context.Quick
  | Some _ | None -> Experiments.Context.Standard

let obs_out =
  let rec scan = function
    | "--obs-out" :: path :: _ -> Some path
    | _ :: rest -> scan rest
    | [] -> None
  in
  scan (Array.to_list Sys.argv)

(* Resolve --jobs (0 = all cores) before anything touches the shared
   pool; without the flag the pool falls back to SMALLWORLD_JOBS. *)
let () =
  let rec scan = function
    | "--jobs" :: v :: _ -> (
        match int_of_string_opt v with
        | Some j when j >= 0 -> Parallel.Global.set_jobs j
        | Some _ | None -> die Api.Error.Usage "--jobs expects a non-negative integer")
    | _ :: rest -> scan rest
    | [] -> ()
  in
  scan (Array.to_list Sys.argv)

let seed = 42

let run_experiment_tables () =
  print_endline "==============================================================";
  print_endline " Phase 1: paper-reproduction tables (one block per experiment)";
  print_endline "==============================================================\n";
  let ctx = Experiments.Context.make ~seed ~scale () in
  let manifest_oc = Option.map open_out obs_out in
  List.iter
    (fun e ->
      (* Fresh counters, trace and event buffer per experiment so the
         manifest line (and the printed tree) attribute to this
         experiment alone. *)
      Obs.Metrics.reset Obs.Metrics.default;
      Obs.Trace.clear ();
      Obs.Events.clear ();
      let tables, span = Experiments.Registry.run_traced e ctx in
      print_string (Experiments.Registry.render_header e);
      List.iter (fun t -> print_string (Stats.Table.render t); print_newline ()) tables;
      (match span with
      | Some s ->
          print_string (Obs.Trace.render s);
          Printf.printf "(%s finished in %.1fs)\n\n%!" e.Experiments.Registry.id s.Obs.Span.wall_s
      | None ->
          Printf.printf "(%s finished; timing disabled via SMALLWORLD_OBS=0)\n\n%!"
            e.Experiments.Registry.id);
      Option.iter
        (fun oc ->
          output_string oc
            (Obs.Export.manifest_line ~experiment:e.Experiments.Registry.id ~seed
               ~scale:(Experiments.Context.scale_name ctx)
               ~registry:Obs.Metrics.default ~span ());
          output_char oc '\n';
          flush oc)
        manifest_oc)
    Experiments.Registry.all;
  Option.iter close_out manifest_oc;
  Option.iter (Printf.printf "run manifest written to %s\n\n%!") obs_out

(* ------------------------------------------------------------------ *)
(* Phase 2: Bechamel micro-benchmarks                                   *)

(* Shared fixtures, built once outside the timed region. *)
let fixture_girg =
  lazy
    (let params = Girg.Params.make ~dim:2 ~beta:2.5 ~c:0.15 ~n:20_000 () in
     let inst = Girg.Instance.generate ~rng:(Prng.Rng.create ~seed:3) params in
     let giant =
       Sparse_graph.Components.giant_members (Sparse_graph.Components.compute inst.graph)
     in
     (inst, giant))

let fixture_sparse_girg =
  lazy
    (let params = Girg.Params.make ~dim:2 ~beta:2.6 ~c:0.07 ~w_min:0.6 ~n:20_000 () in
     let inst = Girg.Instance.generate ~rng:(Prng.Rng.create ~seed:4) params in
     let giant =
       Sparse_graph.Components.giant_members (Sparse_graph.Components.compute inst.graph)
     in
     (inst, giant))

let fixture_hrg =
  lazy (Hyperbolic.Hrg.generate ~rng:(Prng.Rng.create ~seed:5)
          (Hyperbolic.Hrg.make ~alpha_h:0.75 ~radius_c:(-1.0) ~n:20_000 ()))

let route_bench ~name ~protocol ~sparse =
  Test.make ~name
    (Staged.stage (fun () ->
         let inst, giant = Lazy.force (if sparse then fixture_sparse_girg else fixture_girg) in
         let rng = Prng.Rng.create ~seed:(Hashtbl.hash name) in
         let i, j = Prng.Dist.sample_distinct_pair rng ~n:(Array.length giant) in
         let objective = Greedy_routing.Objective.girg_phi inst ~target:giant.(j) in
         ignore
           (Greedy_routing.Protocol.run protocol ~graph:inst.graph ~objective
              ~source:giant.(i) ())))

(* One miniature kernel per (cheap enough) experiment id, so regressions in
   any reproduced pipeline show up as timing changes here.  The heavyweight
   sweep experiments are covered through their per-unit workloads below. *)
let experiment_kernels =
  let mini_ctx = Experiments.Context.make ~seed:1 ~scale:Experiments.Context.Quick () in
  let kernel id =
    match Experiments.Registry.find id with
    | None -> failwith ("unknown experiment " ^ id)
    | Some e -> Test.make ~name:("kernel/" ^ id) (Staged.stage (fun () -> ignore (e.run mini_ctx)))
  in
  List.map kernel [ "E4"; "E5"; "E8"; "E9"; "E11"; "E12"; "E13"; "E15"; "E16"; "E17" ]

let generator_benches =
  [
    Test.make ~name:"girg/cell n=10k d=2"
      (Staged.stage (fun () ->
           let params = Girg.Params.make ~dim:2 ~beta:2.5 ~c:0.15 ~n:10_000 () in
           ignore
             (Girg.Instance.generate ~sampler:Girg.Instance.Use_cell
                ~rng:(Prng.Rng.create ~seed:11) params)));
    Test.make ~name:"girg/naive n=1k d=2"
      (Staged.stage (fun () ->
           let params = Girg.Params.make ~dim:2 ~beta:2.5 ~c:0.15 ~n:1000 () in
           ignore
             (Girg.Instance.generate ~sampler:Girg.Instance.Use_naive
                ~rng:(Prng.Rng.create ~seed:12) params)));
    Test.make ~name:"girg/cell n=10k threshold"
      (Staged.stage (fun () ->
           let params =
             Girg.Params.make ~dim:2 ~beta:2.5 ~alpha:Girg.Params.Infinite ~c:0.15 ~n:10_000 ()
           in
           ignore (Girg.Instance.generate ~rng:(Prng.Rng.create ~seed:13) params)));
    Test.make ~name:"hrg/cell n=10k"
      (Staged.stage (fun () ->
           ignore
             (Hyperbolic.Hrg.generate ~rng:(Prng.Rng.create ~seed:14)
                (Hyperbolic.Hrg.make ~alpha_h:0.75 ~radius_c:(-1.0) ~n:10_000 ()))));
    Test.make ~name:"chung_lu/n=30k"
      (Staged.stage (fun () ->
           ignore
             (Girg.Chung_lu.generate_power_law
                ~rng:(Prng.Rng.create ~seed:18) ~n:30_000 ~beta:2.5 ~w_min:2.0)));
    Test.make ~name:"embed/tree-layout n=10k"
      (Staged.stage (fun () ->
           let h = Lazy.force fixture_hrg in
           ignore
             (Hyperbolic.Embed.infer ~rng:(Prng.Rng.create ~seed:19)
                ~graph:h.Hyperbolic.Hrg.graph ())));
    Test.make ~name:"kleinberg/side=64"
      (Staged.stage (fun () ->
           ignore
             (Kleinberg.Lattice.generate ~rng:(Prng.Rng.create ~seed:15)
                (Kleinberg.Lattice.make ~side:64 ()))));
  ]

let routing_benches =
  [
    route_bench ~name:"route/greedy dense" ~protocol:Greedy_routing.Protocol.Greedy ~sparse:false;
    route_bench ~name:"route/phi-dfs sparse" ~protocol:Greedy_routing.Protocol.Patch_dfs
      ~sparse:true;
    route_bench ~name:"route/history sparse" ~protocol:Greedy_routing.Protocol.Patch_history
      ~sparse:true;
    route_bench ~name:"route/gravity sparse" ~protocol:Greedy_routing.Protocol.Gravity_pressure
      ~sparse:true;
    Test.make ~name:"route/hyperbolic greedy"
      (Staged.stage (fun () ->
           let h = Lazy.force fixture_hrg in
           let rng = Prng.Rng.create ~seed:16 in
           let s, t = Prng.Dist.sample_distinct_pair rng ~n:(Sparse_graph.Graph.n h.graph) in
           let objective = Greedy_routing.Objective.hyperbolic h ~target:t in
           ignore (Greedy_routing.Greedy.route ~graph:h.graph ~objective ~source:s ())));
    Test.make ~name:"bfs/bidirectional pair"
      (Staged.stage (fun () ->
           let inst, giant = Lazy.force fixture_girg in
           let rng = Prng.Rng.create ~seed:17 in
           let i, j = Prng.Dist.sample_distinct_pair rng ~n:(Array.length giant) in
           ignore (Sparse_graph.Bfs.distance inst.graph ~source:giant.(i) ~target:giant.(j))));
  ]

let all_benches =
  Test.make_grouped ~name:"smallworld" ~fmt:"%s %s"
    (generator_benches @ routing_benches @ experiment_kernels)

let run_benchmarks () =
  print_endline "==============================================================";
  print_endline " Phase 2: Bechamel micro-benchmarks (OLS estimate per run)";
  print_endline "==============================================================\n";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 1.5) ~stabilize:true ~kde:(Some 10) ()
  in
  let raw = Benchmark.all cfg instances all_benches in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  let merged = Analyze.merge ols instances results in
  match Hashtbl.find_opt merged (Measure.label Instance.monotonic_clock) with
  | None -> print_endline "no monotonic clock results?"
  | Some tbl ->
      let rows =
        Hashtbl.fold
          (fun name ols_result acc ->
            let ns =
              match Analyze.OLS.estimates ols_result with
              | Some (est :: _) -> est
              | Some [] | None -> nan
            in
            (name, ns) :: acc)
          tbl []
      in
      let rows = List.sort compare rows in
      Printf.printf "  %-42s %15s %12s\n" "benchmark" "ns/run" "ms/run";
      Printf.printf "  %s\n" (String.make 71 '-');
      List.iter
        (fun (name, ns) -> Printf.printf "  %-42s %15.0f %12.3f\n" name ns (ns /. 1e6))
        rows

(* ------------------------------------------------------------------ *)
(* record / diff: continuous-benchmark telemetry (smallworld.bench.v1) *)

let opt_value args key ~default =
  let rec scan = function
    | k :: v :: _ when k = key -> v
    | _ :: rest -> scan rest
    | [] -> default
  in
  scan args

let record args =
  let runs = max 1 (int_of_string (opt_value args "--runs" ~default:"3")) in
  let label = opt_value args "--label" ~default:"current" in
  let rseed = int_of_string (opt_value args "--seed" ~default:(string_of_int seed)) in
  let out = opt_value args "--out" ~default:("BENCH_" ^ label ^ ".json") in
  let ctx = Experiments.Context.make ~seed:rseed ~scale () in
  let entries =
    List.map
      (fun e ->
        let id = e.Experiments.Registry.id in
        let walls = ref [] in
        let alloc = ref 0.0 in
        for _ = 1 to runs do
          (* Fresh counters per run so the snapshot describes one run; the
             wall clock is read directly, so recording also works under
             SMALLWORLD_OBS=0 (counters then come back zeroed). *)
          Obs.Metrics.reset Obs.Metrics.default;
          Obs.Trace.clear ();
          Obs.Events.clear ();
          let a0 = Gc.allocated_bytes () in
          let t0 = Unix.gettimeofday () in
          ignore (e.Experiments.Registry.run ctx);
          walls := (Unix.gettimeofday () -. t0) :: !walls;
          alloc := Gc.allocated_bytes () -. a0
        done;
        let entry =
          Obs.Bench.make_entry ~id ~wall_s:!walls ~alloc_bytes:!alloc
            ~counters:(Obs.Bench.counters_of_registry Obs.Metrics.default)
        in
        Printf.printf "  %-4s median %7.3fs  min %7.3fs  (%d runs)\n%!" id entry.Obs.Bench.median_s
          entry.Obs.Bench.min_s runs;
        entry)
      Experiments.Registry.all
  in
  let report =
    {
      Obs.Bench.label;
      git_rev = Obs.Export.git_rev ();
      scale = Experiments.Context.scale_name ctx;
      seed = rseed;
      jobs = Parallel.Global.jobs ();
      entries;
    }
  in
  Out_channel.with_open_text out (fun oc ->
      output_string oc (Obs.Bench.to_string report);
      output_char oc '\n');
  Printf.printf "bench report (%s) written to %s\n" Obs.Bench.schema_version out

let load_report path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e -> die Api.Error.Io "%s" e
  | contents -> (
      match Obs.Bench.of_string contents with
      | Ok r -> r
      | Error e -> die Api.Error.Io "cannot read %s: %s" path e)

let diff args =
  let threshold_pct = float_of_string (opt_value args "--threshold" ~default:"25") in
  let alloc_threshold_pct =
    float_of_string (opt_value args "--alloc-threshold" ~default:"100")
  in
  (* On shared CI runners wall time flaps with machine load while
     allocation stays deterministic: --advisory-time reports timing
     verdicts but only allocation regressions affect the exit code. *)
  let advisory_time = List.mem "--advisory-time" args in
  let positional = List.filter (fun a -> String.length a = 0 || a.[0] <> '-') args in
  match positional with
  | [ base_path; cur_path ] ->
      let baseline = load_report base_path and current = load_report cur_path in
      (* The header goes out before any comparability refusal, so an
         exit-2 "cannot compare" names exactly what mismatched. *)
      Printf.printf "schema %s\n" Obs.Bench.schema_version;
      Printf.printf "baseline %s (%s, %s, jobs %d)  vs  current %s (%s, %s, jobs %d)\n"
        baseline.Obs.Bench.label baseline.Obs.Bench.git_rev baseline.Obs.Bench.scale
        baseline.Obs.Bench.jobs
        current.Obs.Bench.label current.Obs.Bench.git_rev current.Obs.Bench.scale
        current.Obs.Bench.jobs;
      if baseline.Obs.Bench.jobs <> current.Obs.Bench.jobs then
        (* Wall times scale with the job count and alloc_bytes is
           per-domain in OCaml 5, so a cross-jobs diff would gate CI on
           an apples-to-oranges comparison. *)
        die Api.Error.Incomparable
          "cannot compare: baseline recorded with --jobs %d, current with --jobs %d"
          baseline.Obs.Bench.jobs current.Obs.Bench.jobs;
      let comparisons =
        Obs.Bench.diff ~threshold_pct ~alloc_threshold_pct ~baseline ~current ()
      in
      if baseline.Obs.Bench.scale <> current.Obs.Bench.scale then
        print_endline "warning: reports were recorded at different scales";
      print_string (Obs.Bench.render_diff comparisons);
      let time_bad = Obs.Bench.time_regressed comparisons in
      let alloc_bad = Obs.Bench.alloc_regressed comparisons in
      if alloc_bad then begin
        Printf.printf "FAIL: allocation regression beyond %.0f%% (or missing experiment)\n"
          alloc_threshold_pct;
        exit (Api.Error.exit_code Api.Error.Regression)
      end
      else if time_bad && not advisory_time then begin
        Printf.printf "FAIL: median regression beyond %.0f%% (or missing experiment)\n" threshold_pct;
        exit (Api.Error.exit_code Api.Error.Regression)
      end
      else if time_bad then
        Printf.printf
          "WARN: median regression beyond %.0f%% (advisory: timing not gated on this runner)\n"
          threshold_pct
      else print_endline "OK: no regression beyond threshold"
  | _ ->
      die Api.Error.Usage
        "usage: bench diff BASELINE CURRENT [--threshold PCT] [--alloc-threshold PCT] \
         [--advisory-time]"

let () =
  match Array.to_list Sys.argv with
  | _ :: "record" :: rest -> record rest
  | _ :: "diff" :: rest -> diff rest
  | _ ->
      run_experiment_tables ();
      run_benchmarks ()
